//! The service's failure vocabulary.

use std::fmt;

/// Everything that can go wrong between accepting a request and returning
/// a prediction.
///
/// ```
/// let e = serve::ServeError::Overloaded { depth: 64, capacity: 64 };
/// assert!(e.to_string().contains("64/64"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full; the caller should back off and
    /// retry. Carries the observed depth and the configured capacity.
    Overloaded {
        /// Queue depth at rejection time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline passed before a batch picked it up.
    DeadlineExceeded,
    /// The server is draining and accepts no new requests.
    ShuttingDown,
    /// No model with this name is loaded in the registry.
    UnknownModel(String),
    /// The recipe text canonicalized to zero entity tokens.
    EmptyRecipe,
    /// The worker disappeared before answering (it panicked or the server
    /// was torn down mid-flight).
    Canceled,
    /// A [`ServeConfig`](crate::ServeConfig) or
    /// [`RouterConfig`](crate::RouterConfig) field is out of range. The
    /// message names the offending field; nothing was started.
    InvalidConfig(String),
    /// A rolling deploy aborted. Replicas already promoted were rolled
    /// back to the previous version; no request was ever answered by the
    /// rejected checkpoint.
    DeployFailed(String),
    /// The connection to a socket-backed replica failed: connect refused,
    /// read/write timeout, short read, or a corrupt frame. The router
    /// treats this exactly like a dead in-process worker (ejection +
    /// probe-back); the supervisor treats it as a respawn signal.
    Transport(String),
    /// A broken internal invariant that was downgraded from a panic —
    /// e.g. a poisoned lock observed on a write path, or an operation
    /// that is meaningless in the current serving mode. The fleet keeps
    /// serving; only this call fails.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { depth, capacity } => {
                write!(f, "queue overloaded ({depth}/{capacity} requests)")
            }
            Self::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::UnknownModel(name) => write!(f, "no model named {name:?} is loaded"),
            Self::EmptyRecipe => write!(f, "recipe text has no entity tokens"),
            Self::Canceled => write!(f, "request canceled: worker went away"),
            Self::InvalidConfig(what) => write!(f, "invalid config: {what}"),
            Self::DeployFailed(what) => write!(f, "rolling deploy failed: {what}"),
            Self::Transport(what) => write!(f, "replica transport failed: {what}"),
            Self::Internal(what) => write!(f, "internal serving error: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Overloaded {
            depth: 3,
            capacity: 2
        }
        .to_string()
        .contains("3/2"));
        assert!(ServeError::UnknownModel("lstm".into())
            .to_string()
            .contains("lstm"));
        let source: Box<dyn std::error::Error> = Box::new(ServeError::EmptyRecipe);
        assert!(source.to_string().contains("no entity tokens"));
        assert!(
            ServeError::InvalidConfig("max_batch must be at least 1".into())
                .to_string()
                .contains("max_batch")
        );
        assert!(
            ServeError::DeployFailed("warmup: lstm model panicked".into())
                .to_string()
                .contains("deploy")
        );
        assert!(ServeError::Transport("read timed out".into())
            .to_string()
            .contains("transport"));
        assert!(ServeError::Internal("poisoned lock".into())
            .to_string()
            .contains("internal"));
    }
}
