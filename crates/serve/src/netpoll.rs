//! A minimal, dependency-free `poll(2)` wrapper for the replica-worker
//! event loop.
//!
//! The workspace builds offline with no external crates (see
//! `shims/README.md`), so there is no `libc` to lean on. On Linux
//! x86-64 this module issues the `poll` syscall directly (one `syscall`
//! instruction; the kernel ABI is stable); everywhere else it degrades
//! to a timed claim-everything sweep — [`poll`] sleeps a short slice and
//! reports every registered descriptor as ready, which is correct (the
//! event loop only ever performs non-blocking reads/writes and treats
//! `WouldBlock` as "not actually ready") but burns a wakeup per slice
//! instead of sleeping until real readiness.
//!
//! Only the three readiness bits the event loop needs are exposed
//! (`POLLIN`, `POLLOUT`, and the error/hangup family); this is not a
//! general I/O reactor, it is exactly the syscall surface
//! `serve::eventloop` multiplexes sockets with.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable data (or a peer close, which also wakes readers).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Descriptor not open (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness result — ABI-compatible
/// with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watches `fd` for `events` (a bitmask of [`POLLIN`]/[`POLLOUT`]).
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Whether a read (or accept) is worth attempting: data, hangup, or
    /// an error was reported.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Whether a write is worth attempting.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

/// Blocks until at least one descriptor in `fds` is ready, `timeout`
/// elapses (`None` = wait forever), or a signal interrupts — interrupts
/// are retried internally. Returns the number of descriptors with
/// non-zero `revents`.
///
/// # Errors
///
/// The raw OS error from the syscall (`EINVAL` for an oversized set,
/// `ENOMEM`, …). `EINTR` never surfaces.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    // poll(2) takes whole milliseconds; round a sub-millisecond timeout
    // *up* so a 500µs wait is a 1ms sleep, not a hot non-blocking spin
    let timeout_ms: i32 = match timeout {
        None => -1,
        Some(d) => d.as_micros().div_ceil(1_000).min(i32::MAX as u128) as i32,
    };
    imp::poll(fds, timeout_ms)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::PollFd;
    use std::io;

    const SYS_POLL: isize = 7;
    const EINTR: isize = 4;

    fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> isize {
        let ret: isize;
        // SAFETY: the Linux x86-64 `poll` ABI — rdi = pointer to an array
        // of `nfds` pollfd structs (PollFd is repr(C) with the kernel's
        // layout), rsi = nfds, rdx = timeout in ms. The kernel writes only
        // the `revents` fields inside the borrowed slice. rcx/r11 are
        // clobbered by `syscall` itself.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_POLL => ret,
                in("rdi") fds.as_mut_ptr(),
                in("rsi") fds.len(),
                in("rdx") timeout_ms as isize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    pub(super) fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            match sys_poll(fds, timeout_ms) {
                ret if ret >= 0 => return Ok(ret as usize),
                ret if -ret == EINTR => continue,
                ret => return Err(io::Error::from_raw_os_error(-ret as i32)),
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// Degraded portable fallback: sleep one slice of the timeout, then
    /// claim every descriptor ready. Callers do non-blocking I/O and
    /// treat `WouldBlock` as "not ready after all", so this is correct —
    /// just a busy-ish poll instead of a true readiness sleep.
    pub(super) fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let slice_ms = if timeout_ms < 0 { 1 } else { timeout_ms.min(1) };
        std::thread::sleep(Duration::from_millis(slice_ms as u64));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn times_out_on_a_silent_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let started = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        // the portable fallback claims readiness; the real syscall must
        // report silence and honor the timeout
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert_eq!(n, 0);
            assert!(!fds[0].readable());
            assert!(started.elapsed() >= Duration::from_millis(25));
        }
    }

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn reports_writability_on_an_open_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_wakes_a_reader() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable(), "peer close must wake the reader");
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // must not be treated as a 0ms (non-blocking) poll in a loop —
        // just checking it returns without error
        let _ = poll(&mut fds, Some(Duration::from_micros(300))).unwrap();
    }
}
