//! Recipe records and the in-memory dataset.

use serde::{Deserialize, Serialize};

use crate::entities::{EntityId, EntityKind, EntityTable};
use crate::taxonomy::{Continent, CuisineId};

/// Unique recipe identifier (stable across splits and serialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecipeId(pub u32);

/// One recipe: a cuisine label and the *ordered* entity sequence —
/// ingredients first, then the chain of cooking processes, then utensils,
/// mirroring the paper's Table I rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recipe {
    /// Stable identifier.
    pub id: RecipeId,
    /// Class label (one of the 26 cuisines).
    pub cuisine: CuisineId,
    /// Ordered entity sequence.
    pub tokens: Vec<EntityId>,
}

impl Recipe {
    /// Continental region of the recipe's cuisine.
    pub fn continent(&self) -> Continent {
        self.cuisine.info().continent
    }

    /// Number of tokens of one kind in the sequence.
    pub fn count_kind(&self, table: &EntityTable, kind: EntityKind) -> usize {
        self.tokens
            .iter()
            .filter(|&&t| table.kind(t) == kind)
            .count()
    }

    /// Renders the sequence as whitespace-separated entity names — the
    /// "unstructured text" view that the TF-IDF pipeline consumes.
    pub fn to_text(&self, table: &EntityTable) -> String {
        let mut out = String::new();
        for (i, &t) in self.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(table.name(t));
        }
        out
    }
}

/// A corpus of recipes plus the entity vocabulary they index into.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The entity vocabulary.
    pub table: EntityTable,
    /// All recipes, in generation order.
    pub recipes: Vec<Recipe>,
}

impl Dataset {
    /// Number of recipes.
    pub fn len(&self) -> usize {
        self.recipes.len()
    }

    /// Whether the dataset holds no recipes.
    pub fn is_empty(&self) -> bool {
        self.recipes.is_empty()
    }

    /// Recipes of one cuisine.
    pub fn of_cuisine(&self, cuisine: CuisineId) -> impl Iterator<Item = &Recipe> {
        self.recipes.iter().filter(move |r| r.cuisine == cuisine)
    }

    /// Class labels (cuisine indices) aligned with `recipes`.
    pub fn labels(&self) -> Vec<usize> {
        self.recipes.iter().map(|r| r.cuisine.index()).collect()
    }

    /// Mean token-sequence length.
    pub fn mean_length(&self) -> f64 {
        if self.recipes.is_empty() {
            return 0.0;
        }
        let total: usize = self.recipes.iter().map(|r| r.tokens.len()).sum();
        total as f64 / self.recipes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let table = EntityTable::synthesize(10, 5, 3);
        let recipes = vec![
            Recipe {
                id: RecipeId(0),
                cuisine: CuisineId(0),
                tokens: vec![EntityId(0), EntityId(10)],
            },
            Recipe {
                id: RecipeId(1),
                cuisine: CuisineId(3),
                tokens: vec![EntityId(1), EntityId(11), EntityId(15)],
            },
        ];
        Dataset { table, recipes }
    }

    #[test]
    fn to_text_joins_names() {
        let d = tiny();
        let text = d.recipes[0].to_text(&d.table);
        assert_eq!(text, "onion add");
    }

    #[test]
    fn count_kind_splits_sequence() {
        let d = tiny();
        let r = &d.recipes[1];
        assert_eq!(r.count_kind(&d.table, EntityKind::Ingredient), 1);
        assert_eq!(r.count_kind(&d.table, EntityKind::Process), 1);
        assert_eq!(r.count_kind(&d.table, EntityKind::Utensil), 1);
    }

    #[test]
    fn labels_align() {
        let d = tiny();
        assert_eq!(d.labels(), vec![0, 3]);
    }

    #[test]
    fn mean_length() {
        let d = tiny();
        assert!((d.mean_length() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn of_cuisine_filters() {
        let d = tiny();
        assert_eq!(d.of_cuisine(CuisineId(3)).count(), 1);
        assert_eq!(d.of_cuisine(CuisineId(9)).count(), 0);
    }
}
