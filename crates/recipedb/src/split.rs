//! Stratified train/validation/test splitting.
//!
//! The paper divides RecipeDB 7:1:2 into train/validation/test. We stratify
//! by cuisine so every class keeps the same proportions in each part —
//! important because the class sizes span 460 (Central American) to 16,582
//! (Italian).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::taxonomy::CuisineId;

/// Index-based view of a dataset split. Indices refer to
/// `Dataset::recipes` positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training indices (~70%).
    pub train: Vec<usize>,
    /// Validation indices (~10%).
    pub val: Vec<usize>,
    /// Test indices (~20%).
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of indices across all three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Stratified 7:1:2 split, deterministic per seed.
///
/// Within each cuisine the recipes are shuffled and divided 70/10/20 (with
/// remainders going to train). Classes with fewer than 10 recipes still
/// contribute at least one test example when they have ≥2 recipes.
pub fn train_val_test_split(dataset: &Dataset, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut split = Split {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
    };

    for cuisine in CuisineId::all() {
        let mut idx: Vec<usize> = dataset
            .recipes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cuisine == cuisine)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        idx.shuffle(&mut rng);

        let n = idx.len();
        let n_test = ((n as f64 * 0.2).round() as usize).clamp(usize::from(n >= 2), n);
        let n_val = ((n as f64 * 0.1).round() as usize).min(n - n_test);

        split.test.extend(&idx[..n_test]);
        split.val.extend(&idx[n_test..n_test + n_val]);
        split.train.extend(&idx[n_test + n_val..]);
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Recipe, RecipeId};
    use crate::entities::{EntityId, EntityTable};

    fn dataset_with_counts(counts: &[(u8, usize)]) -> Dataset {
        let table = EntityTable::synthesize(10, 5, 3);
        let mut recipes = Vec::new();
        let mut id = 0u32;
        for &(cuisine, n) in counts {
            for _ in 0..n {
                recipes.push(Recipe {
                    id: RecipeId(id),
                    cuisine: CuisineId(cuisine),
                    tokens: vec![EntityId(0)],
                });
                id += 1;
            }
        }
        Dataset { table, recipes }
    }

    #[test]
    fn parts_are_disjoint_and_cover() {
        let d = dataset_with_counts(&[(0, 100), (1, 50), (2, 10)]);
        let s = train_val_test_split(&d, 42);
        assert_eq!(s.len(), 160);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 160, "overlapping split parts");
    }

    #[test]
    fn ratios_approximate_7_1_2() {
        let d = dataset_with_counts(&[(0, 1000)]);
        let s = train_val_test_split(&d, 1);
        assert_eq!(s.test.len(), 200);
        assert_eq!(s.val.len(), 100);
        assert_eq!(s.train.len(), 700);
    }

    #[test]
    fn stratification_preserves_class_ratio() {
        let d = dataset_with_counts(&[(0, 900), (1, 100)]);
        let s = train_val_test_split(&d, 7);
        let class1_in_test = s
            .test
            .iter()
            .filter(|&&i| d.recipes[i].cuisine == CuisineId(1))
            .count();
        assert_eq!(class1_in_test, 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dataset_with_counts(&[(0, 50), (5, 50)]);
        let a = train_val_test_split(&d, 3);
        let b = train_val_test_split(&d, 3);
        assert_eq!(a, b);
        let c = train_val_test_split(&d, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_class_keeps_a_test_example() {
        let d = dataset_with_counts(&[(0, 3)]);
        let s = train_val_test_split(&d, 0);
        assert!(!s.test.is_empty());
        assert!(!s.train.is_empty());
    }

    #[test]
    fn single_recipe_class_goes_to_train() {
        let d = dataset_with_counts(&[(0, 1)]);
        let s = train_val_test_split(&d, 0);
        assert_eq!(s.train.len(), 1);
        assert!(s.test.is_empty());
    }
}
