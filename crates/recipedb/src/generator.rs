//! The synthetic recipe generator.
//!
//! Recipes are generated cuisine by cuisine with the Table II class counts
//! (optionally scaled down), as ordered sequences
//! `[ingredients…, processes…, utensils…]` like the paper's Table I rows.
//!
//! # Frequency calibration
//!
//! Head entities are sampled with probability proportional to their
//! [`FrequencyPlan`] target, with two corrections that keep *realized*
//! corpus frequencies near the plan despite the planted signal:
//!
//! * process motif mass is pre-assigned to high-frequency processes by a
//!   greedy capacity-aware allocator, and subtracted from their i.i.d.
//!   sampling weight;
//! * cuisine-tilted ingredient weights go through a few Sinkhorn-style
//!   rebalancing iterations so a boosted ingredient's *global* expected
//!   frequency still matches its target while its *relative* per-cuisine
//!   preference (the bag signal) is preserved.
//!
//! Tail entities (plan frequency < 20) are not sampled at all: they are
//! injected by exact quota, which reproduces Table III's tail — including
//! the 11,738 hapax entities — exactly.
//!
//! # Planted signal
//!
//! * **Bag signal** — each cuisine boosts a signature set of mid-frequency
//!   ingredients; a configurable fraction of each signature set is drawn
//!   from a shared continent pool, which caps how far bag-of-words models
//!   can get.
//! * **Order signal** — each continent owns a set of process motifs
//!   (small token sets); every cuisine within the continent uses the *same
//!   tokens* but in its *own fixed order* (a distinct permutation). Unigram
//!   statistics therefore identify only the continent; the cuisine is
//!   recoverable only from token order.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, Recipe, RecipeId};
use crate::entities::{EntityId, EntityKind, EntityTable};
use crate::taxonomy::{Continent, CuisineId};
use crate::vocab::{
    FrequencyPlan, PLAN_TOTAL_INGREDIENTS, PLAN_TOTAL_PROCESSES, PLAN_TOTAL_UTENSILS,
};

/// Strength and shape of the planted classification signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalProfile {
    /// Signature ingredients per cuisine.
    pub signature_size: usize,
    /// Multiplicative sampling boost for signature ingredients.
    pub bag_tilt: f64,
    /// Fraction of each signature set drawn from the continent-shared pool
    /// (higher → sibling cuisines are more confusable for bag models).
    pub shared_fraction: f64,
    /// Ordered process motifs per cuisine.
    pub motifs_per_cuisine: usize,
    /// Processes per motif (permutations of this length encode cuisines).
    pub motif_len: usize,
    /// Motif occurrences injected per recipe (when the motif roll hits).
    pub motifs_per_recipe: usize,
    /// Probability that a recipe contains motif occurrences at all.
    pub motif_rate: f64,
    /// Multiplicative boost for continent-preferred utensils.
    pub utensil_tilt: f64,
}

impl Default for SignalProfile {
    fn default() -> Self {
        // Calibrated (see `bench/src/bin/calibrate.rs`) so that at small
        // scale the TF-IDF statistical models land in the paper's Table IV
        // accuracy band (~50-58%) while sequence models retain additional
        // order-only headroom.
        Self {
            signature_size: 240,
            bag_tilt: 50.0,
            shared_fraction: 0.5,
            motifs_per_cuisine: 4,
            motif_len: 4,
            motifs_per_recipe: 2,
            motif_rate: 0.9,
            utensil_tilt: 2.0,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; every byte of the corpus is deterministic in it.
    pub seed: u64,
    /// Corpus scale relative to the paper (1.0 → 118,171 recipes).
    pub scale: f64,
    /// Signal shape.
    pub signal: SignalProfile,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 2020,
            scale: 1.0,
            signal: SignalProfile::default(),
        }
    }
}

impl GeneratorConfig {
    /// A small config for tests and examples: ~1% of paper scale.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            scale: 0.01,
            ..Self::default()
        }
    }

    /// Recipe count for one cuisine at this scale (minimum 10).
    pub fn cuisine_count(&self, cuisine: CuisineId) -> usize {
        ((cuisine.info().paper_count as f64 * self.scale).round() as usize).max(10)
    }
}

/// Generates a corpus. Deterministic per [`GeneratorConfig::seed`].
pub fn generate(config: &GeneratorConfig) -> Dataset {
    assert!(
        config.scale > 0.0 && config.scale <= 1.0,
        "scale must be in (0, 1]"
    );
    let table = EntityTable::synthesize(
        PLAN_TOTAL_INGREDIENTS,
        PLAN_TOTAL_PROCESSES,
        PLAN_TOTAL_UTENSILS,
    );
    let plan = FrequencyPlan::scaled(&table, config.scale);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let counts: Vec<usize> = CuisineId::all().map(|c| config.cuisine_count(c)).collect();
    let total_recipes: usize = counts.iter().sum();

    let profiles = build_profiles(&table, &plan, config, &counts, &mut rng);
    let lengths = LengthProfile::from_plan(&table, &plan, total_recipes);

    let mut recipes = Vec::with_capacity(total_recipes);
    for (cuisine, &count) in CuisineId::all().zip(&counts) {
        let profile = &profiles[cuisine.index()];
        for _ in 0..count {
            recipes.push(generate_recipe(
                cuisine, profile, &lengths, config, &mut rng,
            ));
        }
    }

    inject_tail(&mut recipes, &plan, &mut rng);

    recipes.shuffle(&mut rng);
    for (i, r) in recipes.iter_mut().enumerate() {
        r.id = RecipeId(i as u32);
    }
    Dataset { table, recipes }
}

/// Mean section lengths derived from the plan's per-kind token mass, so the
/// realized corpus spectrum tracks the plan.
struct LengthProfile {
    mean_ing: f64,
    mean_proc: f64,
    mean_ut: f64,
}

impl LengthProfile {
    fn from_plan(table: &EntityTable, plan: &FrequencyPlan, total_recipes: usize) -> Self {
        let tail_mass: u64 = plan.tail_quotas().iter().map(|&(_, q)| q).sum();
        let ing_mass = plan.kind_mass(table, EntityKind::Ingredient) - tail_mass;
        let proc_mass = plan.kind_mass(table, EntityKind::Process);
        let ut_mass = plan.kind_mass(table, EntityKind::Utensil);
        let n = total_recipes.max(1) as f64;
        Self {
            mean_ing: (ing_mass as f64 / n).max(2.0),
            mean_proc: (proc_mass as f64 / n).max(3.0),
            mean_ut: (ut_mass as f64 / n).max(1.0),
        }
    }

    /// Samples a section length around `mean` (uniform ±40%).
    fn sample(mean: f64, min: usize, rng: &mut StdRng) -> usize {
        let v = mean * rng.gen_range(0.6..1.4);
        (v.round() as usize).max(min)
    }
}

/// Per-cuisine sampling machinery.
struct CuisineProfile {
    ing_ids: Vec<EntityId>,
    ing_dist: WeightedIndex<f64>,
    proc_ids: Vec<EntityId>,
    proc_dist: WeightedIndex<f64>,
    ut_ids: Vec<EntityId>,
    ut_dist: WeightedIndex<f64>,
    /// Motifs in this cuisine's token order.
    motifs: Vec<Vec<EntityId>>,
}

fn build_profiles(
    table: &EntityTable,
    plan: &FrequencyPlan,
    config: &GeneratorConfig,
    counts: &[usize],
    rng: &mut StdRng,
) -> Vec<CuisineProfile> {
    let signal = &config.signal;

    // ---- head entities per kind ---------------------------------------
    let head_ing: Vec<EntityId> = plan.by_rank()[..plan.head_count()]
        .iter()
        .copied()
        .filter(|&id| table.kind(id) == EntityKind::Ingredient && plan.target(id) > 0)
        .collect();
    let procs: Vec<EntityId> = table
        .ids_of_kind(EntityKind::Process)
        .map(EntityId)
        .filter(|&id| plan.target(id) > 0)
        .collect();
    let uts: Vec<EntityId> = table
        .ids_of_kind(EntityKind::Utensil)
        .map(EntityId)
        .filter(|&id| plan.target(id) > 0)
        .collect();

    // ---- signature ingredient sets (bag signal) ------------------------
    // Candidates: mid-frequency head ingredients — boosting staples like
    // 'onion' would carry no cuisine information, boosting near-tail items
    // would distort the spectrum.
    let lo = head_ing.len() / 20;
    let hi = (head_ing.len() * 3 / 4).max(lo + signal.signature_size * 30);
    let candidates: Vec<EntityId> = head_ing[lo..hi.min(head_ing.len())].to_vec();
    let signatures = assign_signatures(&candidates, signal, rng);

    // ---- continent motifs (order signal) --------------------------------
    // Motif tokens come from high-frequency processes; the greedy allocator
    // respects each process's planned frequency so motif injection does not
    // distort the spectrum.
    let total_recipes: usize = counts.iter().sum();
    let motif_sets = assign_motifs(plan, &procs, signal, counts, rng);
    let motif_mass = motif_mass_per_process(&motif_sets, signal, counts);

    // ---- ingredient weight calibration (Sinkhorn) -----------------------
    let ing_weights = calibrate_ingredient_weights(
        plan,
        &head_ing,
        &signatures,
        signal.bag_tilt,
        counts,
        total_recipes,
    );

    // ---- continent utensil preferences ---------------------------------
    let mut continent_uts: Vec<Vec<EntityId>> = Vec::new();
    for _ in Continent::all() {
        let mut set = uts.clone();
        set.shuffle(rng);
        set.truncate((uts.len() / 4).max(1));
        continent_uts.push(set);
    }

    // ---- assemble per-cuisine profiles ----------------------------------
    CuisineId::all()
        .map(|cuisine| {
            let ci = cuisine.index();
            let cont = continent_index(cuisine.info().continent);

            let proc_weights: Vec<f64> = procs
                .iter()
                .map(|&p| {
                    let target = plan.target(p) as f64;
                    let used = motif_mass.get(p.index()).copied().unwrap_or(0.0);
                    (target - used).max(target * 0.05)
                })
                .collect();

            let ut_weights: Vec<f64> = uts
                .iter()
                .map(|&u| {
                    let base = plan.target(u) as f64;
                    if continent_uts[cont].contains(&u) {
                        base * signal.utensil_tilt
                    } else {
                        base
                    }
                })
                .collect();

            CuisineProfile {
                ing_ids: head_ing.clone(),
                ing_dist: WeightedIndex::new(&ing_weights[ci])
                    .expect("non-empty positive ingredient weights"),
                proc_ids: procs.clone(),
                proc_dist: WeightedIndex::new(&proc_weights)
                    .expect("non-empty positive process weights"),
                ut_ids: uts.clone(),
                ut_dist: WeightedIndex::new(&ut_weights)
                    .expect("non-empty positive utensil weights"),
                motifs: motif_sets[ci].clone(),
            }
        })
        .collect()
}

fn continent_index(c: Continent) -> usize {
    Continent::all()
        .iter()
        .position(|&x| x == c)
        .expect("continent listed")
}

/// Picks each cuisine's signature ingredients: `shared_fraction` from a
/// continent pool (confusable with siblings), the rest cuisine-unique.
fn assign_signatures(
    candidates: &[EntityId],
    signal: &SignalProfile,
    rng: &mut StdRng,
) -> Vec<Vec<EntityId>> {
    let mut pool = candidates.to_vec();
    pool.shuffle(rng);
    let mut cursor = 0usize;
    let mut take = |n: usize| -> Vec<EntityId> {
        let end = (cursor + n).min(pool.len());
        let slice = pool[cursor..end].to_vec();
        cursor = end;
        slice
    };

    // One shared pool per continent.
    let shared_n = (signal.signature_size as f64 * signal.shared_fraction) as usize;
    let continent_pools: Vec<Vec<EntityId>> = Continent::all()
        .iter()
        .map(|_| take(shared_n * 2))
        .collect();

    CuisineId::all()
        .map(|cuisine| {
            let cont = continent_index(cuisine.info().continent);
            let mut sig: Vec<EntityId> = continent_pools[cont]
                .choose_multiple(rng, shared_n)
                .copied()
                .collect();
            sig.extend(take(
                signal.signature_size - sig.len().min(signal.signature_size),
            ));
            sig
        })
        .collect()
}

/// Builds continent motif token sets and per-cuisine orderings.
///
/// Returns `motifs[cuisine][slot] = ordered token list`. Cuisines within a
/// continent share each slot's token *set* and differ only in order.
fn assign_motifs(
    plan: &FrequencyPlan,
    procs: &[EntityId],
    signal: &SignalProfile,
    counts: &[usize],
    rng: &mut StdRng,
) -> Vec<Vec<Vec<EntityId>>> {
    // Continent recipe masses determine per-token motif usage; the greedy
    // allocator assigns motif positions to processes with enough planned
    // frequency to absorb them.
    let mut cont_recipes = [0usize; 6];
    for cuisine in CuisineId::all() {
        cont_recipes[continent_index(cuisine.info().continent)] += counts[cuisine.index()];
    }

    // capacity = 80% of planned frequency (leave room for i.i.d. fill)
    let mut capacity: Vec<(EntityId, f64)> = procs
        .iter()
        .map(|&p| (p, plan.target(p) as f64 * 0.8))
        .collect();

    let mut sets: Vec<Vec<Vec<EntityId>>> = vec![Vec::new(); 6];
    for (cont, _) in Continent::all().iter().enumerate() {
        let per_token =
            cont_recipes[cont] as f64 * signal.motif_rate * signal.motifs_per_recipe as f64
                / signal.motifs_per_cuisine as f64;
        for _slot in 0..signal.motifs_per_cuisine {
            let mut tokens = Vec::with_capacity(signal.motif_len);
            for _ in 0..signal.motif_len {
                // pick the process with the largest remaining capacity not
                // already in this motif
                let (idx, _) = capacity
                    .iter()
                    .enumerate()
                    .filter(|(_, (p, _))| !tokens.contains(p))
                    .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                    .expect("at least motif_len processes available");
                tokens.push(capacity[idx].0);
                capacity[idx].1 -= per_token;
            }
            sets[cont].push(tokens);
        }
    }

    // Per-cuisine orderings: a distinct permutation per (cuisine, slot).
    let perms = permutations(signal.motif_len);
    let mut cont_position = [0usize; 6];
    CuisineId::all()
        .map(|cuisine| {
            let cont = continent_index(cuisine.info().continent);
            let pos = cont_position[cont];
            cont_position[cont] += 1;
            let _ = rng; // orderings are deterministic in the position
            sets[cont]
                .iter()
                .enumerate()
                .map(|(slot, tokens)| {
                    let perm = &perms[(pos + slot * 7) % perms.len()];
                    perm.iter().map(|&i| tokens[i % tokens.len()]).collect()
                })
                .collect()
        })
        .collect()
}

/// All permutations of `0..n` in lexicographic order (n ≤ 5).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 5, "motif_len too large for explicit permutation table");
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    permute(&mut items, 0, &mut out);
    out
}

fn permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, out);
        items.swap(k, i);
    }
}

/// Expected motif token usage per process id, used to reduce i.i.d. weights.
fn motif_mass_per_process(
    motifs: &[Vec<Vec<EntityId>>],
    signal: &SignalProfile,
    counts: &[usize],
) -> Vec<f64> {
    let max_id = motifs
        .iter()
        .flatten()
        .flatten()
        .map(|p| p.index())
        .max()
        .unwrap_or(0);
    let mut mass = vec![0.0f64; max_id + 1];
    for (ci, cuisine_motifs) in motifs.iter().enumerate() {
        let per_slot = counts[ci] as f64 * signal.motif_rate * signal.motifs_per_recipe as f64
            / cuisine_motifs.len().max(1) as f64;
        for motif in cuisine_motifs {
            for &p in motif {
                mass[p.index()] += per_slot;
            }
        }
    }
    mass
}

/// Sinkhorn-style calibration: start from `target × tilt` per cuisine, then
/// rescale each ingredient so its expected *global* frequency matches its
/// plan target while per-cuisine preference ratios (the signal) survive.
fn calibrate_ingredient_weights(
    plan: &FrequencyPlan,
    head_ing: &[EntityId],
    signatures: &[Vec<EntityId>],
    bag_tilt: f64,
    counts: &[usize],
    total_recipes: usize,
) -> Vec<Vec<f64>> {
    let n = head_ing.len();
    let mut weights: Vec<Vec<f64>> = signatures
        .iter()
        .map(|sig| {
            head_ing
                .iter()
                .map(|&id| {
                    let base = plan.target(id) as f64;
                    if sig.contains(&id) {
                        base * bag_tilt
                    } else {
                        base
                    }
                })
                .collect()
        })
        .collect();

    let cuisine_mass: Vec<f64> = counts
        .iter()
        .map(|&c| c as f64 / total_recipes.max(1) as f64)
        .collect();

    for _ in 0..3 {
        // expected relative frequency of each ingredient across cuisines
        let mut expected = vec![0.0f64; n];
        for (ci, w) in weights.iter().enumerate() {
            let z: f64 = w.iter().sum();
            if z <= 0.0 {
                continue;
            }
            for (e, &wi) in expected.iter_mut().zip(w) {
                *e += cuisine_mass[ci] * wi / z;
            }
        }
        let target_total: f64 = head_ing.iter().map(|&id| plan.target(id) as f64).sum();
        for (i, &id) in head_ing.iter().enumerate() {
            let target_rel = plan.target(id) as f64 / target_total;
            if expected[i] > 0.0 {
                let ratio = target_rel / expected[i];
                for w in weights.iter_mut() {
                    w[i] *= ratio;
                }
            }
        }
    }
    weights
}

fn generate_recipe(
    cuisine: CuisineId,
    profile: &CuisineProfile,
    lengths: &LengthProfile,
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> Recipe {
    let signal = &config.signal;
    let n_ing = LengthProfile::sample(lengths.mean_ing, 2, rng);
    let min_proc = signal.motif_len * signal.motifs_per_recipe + 2;
    let n_proc = LengthProfile::sample(lengths.mean_proc, min_proc, rng);
    let n_ut = LengthProfile::sample(lengths.mean_ut, 1, rng);

    let mut tokens = Vec::with_capacity(n_ing + n_proc + n_ut);

    // ingredients — resample a few times to avoid duplicates, like a real
    // ingredient list
    for _ in 0..n_ing {
        let mut pick = profile.ing_ids[profile.ing_dist.sample(rng)];
        for _ in 0..3 {
            if !tokens.contains(&pick) {
                break;
            }
            pick = profile.ing_ids[profile.ing_dist.sample(rng)];
        }
        tokens.push(pick);
    }

    // processes, with motifs inserted as contiguous ordered blocks
    let with_motif = rng.gen_bool(signal.motif_rate.clamp(0.0, 1.0));
    let motif_tokens = if with_motif {
        signal.motif_len * signal.motifs_per_recipe
    } else {
        0
    };
    let filler = n_proc.saturating_sub(motif_tokens);
    let mut procs: Vec<EntityId> = (0..filler)
        .map(|_| profile.proc_ids[profile.proc_dist.sample(rng)])
        .collect();
    if with_motif && !profile.motifs.is_empty() {
        for _ in 0..signal.motifs_per_recipe {
            let motif = profile.motifs[rng.gen_range(0..profile.motifs.len())].clone();
            let at = rng.gen_range(0..=procs.len());
            procs.splice(at..at, motif);
        }
    }
    tokens.extend(procs);

    // utensils
    for _ in 0..n_ut {
        tokens.push(profile.ut_ids[profile.ut_dist.sample(rng)]);
    }

    Recipe {
        id: RecipeId(0),
        cuisine,
        tokens,
    }
}

/// Appends tail ingredients to randomly chosen recipes by exact quota.
fn inject_tail(recipes: &mut [Recipe], plan: &FrequencyPlan, rng: &mut StdRng) {
    if recipes.is_empty() {
        return;
    }
    for (id, quota) in plan.tail_quotas() {
        for _ in 0..quota {
            let r = rng.gen_range(0..recipes.len());
            let recipe = &mut recipes[r];
            // insert within the ingredient prefix (first third of the
            // sequence) so tail tokens sit among the other ingredients
            let upper = (recipe.tokens.len() / 3).max(1);
            let at = rng.gen_range(0..=upper);
            recipe.tokens.insert(at, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DatasetStats;

    fn tiny_config() -> GeneratorConfig {
        GeneratorConfig {
            seed: 7,
            scale: 0.005,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&tiny_config());
        let b = generate(&tiny_config());
        assert_eq!(a.recipes, b.recipes);
        let c = generate(&GeneratorConfig {
            seed: 8,
            ..tiny_config()
        });
        assert_ne!(a.recipes, c.recipes);
    }

    #[test]
    fn cuisine_counts_follow_table2_proportions() {
        let config = GeneratorConfig {
            seed: 1,
            scale: 0.01,
            ..Default::default()
        };
        let d = generate(&config);
        let stats = DatasetStats::compute(&d);
        let italian = CuisineId::all().find(|c| c.name() == "Italian").unwrap();
        let korean = CuisineId::all().find(|c| c.name() == "Korean").unwrap();
        assert_eq!(stats.cuisine_count(italian), 166); // round(16582 * 0.01)
        assert_eq!(stats.cuisine_count(korean), 10); // max(10, round(6.68))
    }

    #[test]
    fn sequences_are_ingredients_then_processes_then_utensils() {
        let d = generate(&tiny_config());
        // Tail injection inserts ingredients into the prefix, so check the
        // relative order of kinds: no ingredient after the first process
        // (except injected ones in the first third), no process after the
        // first utensil.
        for r in d.recipes.iter().take(50) {
            let kinds: Vec<EntityKind> = r.tokens.iter().map(|&t| d.table.kind(t)).collect();
            let first_ut = kinds
                .iter()
                .position(|&k| k == EntityKind::Utensil)
                .unwrap_or(kinds.len());
            assert!(
                !kinds[first_ut..].contains(&EntityKind::Process),
                "process after utensil in {kinds:?}"
            );
        }
    }

    #[test]
    fn recipes_have_plausible_lengths() {
        let d = generate(&tiny_config());
        let mean = d.mean_length();
        assert!((10.0..45.0).contains(&mean), "mean length {mean}");
        assert!(d.recipes.iter().all(|r| r.tokens.len() >= 5));
    }

    #[test]
    fn motifs_share_tokens_within_continent_but_differ_in_order() {
        let table = EntityTable::synthesize(2000, 256, 69);
        let plan = FrequencyPlan::scaled(&table, 0.05);
        let procs: Vec<EntityId> = table
            .ids_of_kind(EntityKind::Process)
            .map(EntityId)
            .filter(|&id| plan.target(id) > 0)
            .collect();
        let signal = SignalProfile::default();
        let counts: Vec<usize> = CuisineId::all()
            .map(|c| (c.info().paper_count / 100) as usize)
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let motifs = assign_motifs(&plan, &procs, &signal, &counts, &mut rng);

        // Italian and French are both European.
        let italian = CuisineId::all()
            .find(|c| c.name() == "Italian")
            .unwrap()
            .index();
        let french = CuisineId::all()
            .find(|c| c.name() == "French")
            .unwrap()
            .index();
        let slots = motifs[italian].iter().zip(&motifs[french]);
        for (slot, (ma, mb)) in slots.enumerate().take(signal.motifs_per_cuisine) {
            let mut a = ma.clone();
            let mut b = mb.clone();
            assert_ne!(a, b, "sibling cuisines share motif order in slot {slot}");
            a.sort();
            b.sort();
            assert_eq!(
                a, b,
                "sibling cuisines use different motif tokens in slot {slot}"
            );
        }
    }

    #[test]
    fn tail_injection_hits_exact_quotas() {
        let config = GeneratorConfig {
            seed: 5,
            scale: 0.02,
            ..Default::default()
        };
        let d = generate(&config);
        let stats = DatasetStats::compute(&d);
        let table = &d.table;
        let plan = FrequencyPlan::scaled(table, config.scale);
        for (id, quota) in plan.tail_quotas().into_iter().take(200) {
            let realized = stats.frequencies.get(&id).copied().unwrap_or(0);
            assert_eq!(
                realized,
                quota,
                "tail entity {} missed quota",
                table.name(id)
            );
        }
    }

    #[test]
    fn permutations_enumerates_factorial() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        let p = permutations(4);
        let unique: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(unique.len(), 24);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn invalid_scale_panics() {
        let _ = generate(&GeneratorConfig {
            scale: 0.0,
            ..Default::default()
        });
    }
}
