//! Entity registry: the ingredients, cooking processes and utensils that
//! recipes are sequences of.
//!
//! RecipeDB's vocabulary is ~20.4k entities: 20,280 unique ingredients
//! (dominated by rare compositional names such as *"lasagna noodle wheat"*),
//! 256 unique processes and 69 unique utensils. We synthesise the same
//! counts with the same compositional flavour: a modest list of base food
//! words combined with modifiers and varieties yields tens of thousands of
//! distinct, plausible ingredient names, deterministically enumerated.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// What kind of cooking entity a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A food item ("red lentil", "basmati rice").
    Ingredient,
    /// A cooking action ("stir", "simmer").
    Process,
    /// Cookware ("skillet", "saucepan").
    Utensil,
}

impl EntityKind {
    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            EntityKind::Ingredient => "ingredient",
            EntityKind::Process => "process",
            EntityKind::Utensil => "utensil",
        }
    }
}

/// Index into an [`EntityTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a `usize` (vocabulary index for vectorizers).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The full entity vocabulary, with ingredients first, then processes, then
/// utensils, so each kind occupies a contiguous id range.
#[derive(Debug, Clone)]
pub struct EntityTable {
    names: Vec<String>,
    ingredients: usize,
    processes: usize,
    utensils: usize,
    by_name: HashMap<String, EntityId>,
}

impl EntityTable {
    /// Builds a table with the requested counts per kind, synthesising
    /// compositional names deterministically.
    ///
    /// # Panics
    ///
    /// Panics if a kind's requested count exceeds what the base word lists
    /// can compose (ingredients: ~1.9M; processes: 384; utensils: 125).
    pub fn synthesize(ingredients: usize, processes: usize, utensils: usize) -> Self {
        let mut names = Vec::with_capacity(ingredients + processes + utensils);
        names.extend(compose_ingredients(ingredients));
        names.extend(compose_processes(processes));
        names.extend(compose_utensils(utensils));
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), EntityId(i as u32)))
            .collect();
        Self {
            names,
            ingredients,
            processes,
            utensils,
            by_name,
        }
    }

    /// Total entity count.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of ingredient entities.
    pub fn num_ingredients(&self) -> usize {
        self.ingredients
    }

    /// Number of process entities.
    pub fn num_processes(&self) -> usize {
        self.processes
    }

    /// Number of utensil entities.
    pub fn num_utensils(&self) -> usize {
        self.utensils
    }

    /// Name of an entity.
    pub fn name(&self, id: EntityId) -> &str {
        &self.names[id.index()]
    }

    /// Kind of an entity, derived from its id range.
    pub fn kind(&self, id: EntityId) -> EntityKind {
        let i = id.index();
        if i < self.ingredients {
            EntityKind::Ingredient
        } else if i < self.ingredients + self.processes {
            EntityKind::Process
        } else {
            EntityKind::Utensil
        }
    }

    /// Looks an entity up by exact name.
    pub fn find(&self, name: &str) -> Option<EntityId> {
        self.by_name.get(name).copied()
    }

    /// Ids of every entity of one kind, in id order.
    pub fn ids_of_kind(&self, kind: EntityKind) -> std::ops::Range<u32> {
        let (start, end) = match kind {
            EntityKind::Ingredient => (0, self.ingredients),
            EntityKind::Process => (self.ingredients, self.ingredients + self.processes),
            EntityKind::Utensil => (self.ingredients + self.processes, self.len()),
        };
        start as u32..end as u32
    }
}

const BASE_FOODS: &[&str] = &[
    "onion",
    "garlic",
    "tomato",
    "chicken",
    "beef",
    "pork",
    "lamb",
    "rice",
    "lentil",
    "chickpea",
    "potato",
    "carrot",
    "celery",
    "pepper",
    "chili",
    "ginger",
    "turmeric",
    "cumin",
    "coriander",
    "basil",
    "oregano",
    "thyme",
    "rosemary",
    "parsley",
    "cilantro",
    "mint",
    "dill",
    "sage",
    "paprika",
    "cinnamon",
    "clove",
    "cardamom",
    "nutmeg",
    "saffron",
    "vanilla",
    "sugar",
    "salt",
    "butter",
    "cream",
    "milk",
    "yogurt",
    "cheese",
    "egg",
    "flour",
    "cornmeal",
    "oat",
    "barley",
    "quinoa",
    "noodle",
    "pasta",
    "bread",
    "tortilla",
    "bean",
    "pea",
    "corn",
    "squash",
    "zucchini",
    "eggplant",
    "spinach",
    "kale",
    "cabbage",
    "lettuce",
    "cucumber",
    "radish",
    "beet",
    "turnip",
    "mushroom",
    "leek",
    "shallot",
    "scallion",
    "lime",
    "lemon",
    "orange",
    "apple",
    "pear",
    "peach",
    "plum",
    "cherry",
    "grape",
    "raisin",
    "date",
    "fig",
    "apricot",
    "mango",
    "pineapple",
    "banana",
    "coconut",
    "almond",
    "walnut",
    "pecan",
    "cashew",
    "peanut",
    "pistachio",
    "sesame",
    "honey",
    "molasses",
    "vinegar",
    "wine",
    "beer",
    "broth",
    "stock",
    "shrimp",
    "crab",
    "lobster",
    "salmon",
    "tuna",
    "cod",
    "anchovy",
    "sardine",
    "mussel",
    "clam",
    "oyster",
    "squid",
    "octopus",
    "tofu",
    "tempeh",
    "miso",
    "soy",
    "mirin",
    "sake",
    "fish",
    "duck",
    "turkey",
    "bacon",
    "ham",
    "sausage",
    "chorizo",
    "salami",
    "prosciutto",
    "avocado",
    "olive",
    "caper",
    "artichoke",
    "asparagus",
    "broccoli",
    "cauliflower",
    "fennel",
    "okra",
    "plantain",
    "yam",
    "cassava",
    "taro",
    "seaweed",
    "wasabi",
    "horseradish",
    "mustard",
    "ketchup",
    "mayonnaise",
    "tahini",
    "hummus",
    "salsa",
    "pesto",
    "curry",
    "masala",
    "garam",
    "berbere",
    "harissa",
    "sumac",
    "zaatar",
    "lemongrass",
    "galangal",
    "tamarind",
    "jaggery",
    "ghee",
    "paneer",
    "mozzarella",
    "parmesan",
    "cheddar",
    "feta",
    "ricotta",
    "gouda",
    "brie",
    "oil",
    "lard",
    "margarine",
    "shortening",
    "gelatin",
    "yeast",
    "baking-soda",
    "cocoa",
    "chocolate",
    "espresso",
    "tea",
    "buttermilk",
];

const MODIFIERS: &[&str] = &[
    "fresh",
    "dried",
    "smoked",
    "ground",
    "roasted",
    "toasted",
    "pickled",
    "fermented",
    "cured",
    "salted",
    "unsalted",
    "sweet",
    "sour",
    "spicy",
    "hot",
    "mild",
    "raw",
    "cooked",
    "frozen",
    "canned",
    "organic",
    "wild",
    "baby",
    "mature",
    "aged",
    "young",
    "whole",
    "split",
    "cracked",
    "rolled",
    "steel-cut",
    "stone-ground",
    "cold-pressed",
    "extra-virgin",
    "light",
    "dark",
    "golden",
    "crushed",
    "minced",
    "shredded",
    "grated",
    "sliced",
    "diced",
    "julienned",
    "pureed",
    "candied",
    "glazed",
    "brined",
];

const VARIETIES: &[&str] = &[
    "red",
    "green",
    "yellow",
    "white",
    "black",
    "brown",
    "purple",
    "pink",
    "blood",
    "heirloom",
    "roma",
    "cherry",
    "thai",
    "bird-eye",
    "serrano",
    "jalapeno",
    "habanero",
    "poblano",
    "basmati",
    "jasmine",
    "arborio",
    "long-grain",
    "short-grain",
    "wheat",
    "rye",
    "sourdough",
    "multigrain",
    "winter",
    "summer",
    "spring",
];

fn compose_ingredients(count: usize) -> Vec<String> {
    // Enumerate in a fixed order of increasing name complexity so low ids
    // (which the frequency plan makes common) get short, natural names like
    // the real head of RecipeDB ('onion', 'garlic', 'water', …) while the
    // long tail gets compositional oddities like the paper's example
    // 'lasagna noodle wheat'.
    let max = BASE_FOODS.len()
        * (1 + MODIFIERS.len() + VARIETIES.len() + MODIFIERS.len() * VARIETIES.len());
    assert!(
        count <= max,
        "cannot compose {count} ingredient names (max {max})"
    );
    let mut out = Vec::with_capacity(count);
    // 1. bare bases
    for b in BASE_FOODS {
        if out.len() == count {
            return out;
        }
        out.push((*b).to_string());
    }
    // 2. variety + base
    for v in VARIETIES {
        for b in BASE_FOODS {
            if out.len() == count {
                return out;
            }
            out.push(format!("{v} {b}"));
        }
    }
    // 3. modifier + base
    for m in MODIFIERS {
        for b in BASE_FOODS {
            if out.len() == count {
                return out;
            }
            out.push(format!("{m} {b}"));
        }
    }
    // 4. modifier + variety + base
    for m in MODIFIERS {
        for v in VARIETIES {
            for b in BASE_FOODS {
                if out.len() == count {
                    return out;
                }
                out.push(format!("{m} {v} {b}"));
            }
        }
    }
    out
}

const BASE_PROCESSES: &[&str] = &[
    "add", "stir", "heat", "cook", "mix", "combine", "pour", "season", "garnish", "serve",
    "simmer", "boil", "fry", "saute", "bake", "roast", "grill", "broil", "steam", "poach",
    "blanch", "braise", "stew", "toast", "chop", "slice", "dice", "mince", "grate", "shred",
    "peel", "cut", "trim", "core", "seed", "mash", "puree", "blend", "whisk", "beat", "fold",
    "knead", "roll", "press", "spread", "sprinkle", "drizzle", "coat", "dip", "marinate", "brine",
    "cure", "smoke", "chill", "freeze", "thaw", "rest", "cool", "warm", "reheat", "reduce",
    "thicken", "strain", "drain",
];

const PROCESS_SUFFIXES: &[&str] = &["", " well", " gently", " thoroughly"];

fn compose_processes(count: usize) -> Vec<String> {
    let max = BASE_PROCESSES.len() * PROCESS_SUFFIXES.len();
    assert!(
        count <= max,
        "cannot compose {count} process names (max {max})"
    );
    let mut out = Vec::with_capacity(count);
    for suffix in PROCESS_SUFFIXES {
        for p in BASE_PROCESSES {
            if out.len() == count {
                return out;
            }
            out.push(format!("{p}{suffix}"));
        }
    }
    out
}

const BASE_UTENSILS: &[&str] = &[
    "pot",
    "pan",
    "skillet",
    "saucepan",
    "bowl",
    "processor",
    "blender",
    "oven",
    "grill-pan",
    "wok",
    "griddle",
    "stockpot",
    "roaster",
    "steamer",
    "colander",
    "sieve",
    "whisk-tool",
    "spatula",
    "ladle",
    "tongs",
    "knife",
    "board",
    "grater",
    "peeler",
    "masher",
    "mortar",
    "rolling-pin",
    "sheet",
    "rack",
    "dish",
    "casserole",
    "ramekin",
    "mold",
    "tin",
    "thermometer",
    "scale",
    "mixer",
    "juicer",
    "press-tool",
    "skewer",
    "foil",
    "parchment",
    "twine",
    "mandoline",
    "zester",
];

const UTENSIL_SIZES: &[&str] = &["", "large ", "small "];

fn compose_utensils(count: usize) -> Vec<String> {
    let max = BASE_UTENSILS.len() * UTENSIL_SIZES.len();
    assert!(
        count <= max,
        "cannot compose {count} utensil names (max {max})"
    );
    let mut out = Vec::with_capacity(count);
    for size in UTENSIL_SIZES {
        for u in BASE_UTENSILS {
            if out.len() == count {
                return out;
            }
            out.push(format!("{size}{u}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_table_builds() {
        let t = EntityTable::synthesize(20_280, 256, 69);
        assert_eq!(t.len(), 20_605);
        assert_eq!(t.num_ingredients(), 20_280);
        assert_eq!(t.num_processes(), 256);
        assert_eq!(t.num_utensils(), 69);
    }

    #[test]
    fn names_are_unique() {
        let t = EntityTable::synthesize(5_000, 256, 69);
        assert_eq!(t.by_name.len(), t.len(), "duplicate names synthesised");
    }

    #[test]
    fn kind_ranges_are_contiguous() {
        let t = EntityTable::synthesize(100, 20, 10);
        assert_eq!(t.kind(EntityId(0)), EntityKind::Ingredient);
        assert_eq!(t.kind(EntityId(99)), EntityKind::Ingredient);
        assert_eq!(t.kind(EntityId(100)), EntityKind::Process);
        assert_eq!(t.kind(EntityId(119)), EntityKind::Process);
        assert_eq!(t.kind(EntityId(120)), EntityKind::Utensil);
        assert_eq!(t.kind(EntityId(129)), EntityKind::Utensil);
    }

    #[test]
    fn head_entities_have_simple_names() {
        let t = EntityTable::synthesize(1_000, 64, 45);
        // The first ingredient ids are bare base foods.
        assert_eq!(t.name(EntityId(0)), "onion");
        // The first process is 'add' — the paper's most frequent token.
        let first_process = t.ids_of_kind(EntityKind::Process).start;
        assert_eq!(t.name(EntityId(first_process)), "add");
    }

    #[test]
    fn find_roundtrips() {
        let t = EntityTable::synthesize(500, 64, 45);
        let id = t.find("garlic").expect("garlic exists");
        assert_eq!(t.name(id), "garlic");
        assert_eq!(t.kind(id), EntityKind::Ingredient);
        assert!(t.find("not a real entity").is_none());
    }

    #[test]
    fn ids_of_kind_cover_table() {
        let t = EntityTable::synthesize(200, 30, 15);
        let total: usize = [
            EntityKind::Ingredient,
            EntityKind::Process,
            EntityKind::Utensil,
        ]
        .iter()
        .map(|&k| t.ids_of_kind(k).len())
        .sum();
        assert_eq!(total, t.len());
    }

    #[test]
    #[should_panic(expected = "cannot compose")]
    fn impossible_count_panics() {
        let _ = EntityTable::synthesize(10, 10_000, 10);
    }
}
