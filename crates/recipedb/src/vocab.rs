//! Corpus frequency calibration: a target frequency for every entity such
//! that the generated corpus reproduces the paper's Table III spectrum.
//!
//! Table III gives two cumulative views of the RecipeDB vocabulary:
//!
//! * the head — 304 features above 1,000 occurrences, thinning to 12 above
//!   45,000, with the top process `add` at 188,004 occurrences;
//! * the tail — 11,738 features occurring exactly once, 17,519 below 20.
//!
//! [`FrequencyPlan`] assigns each entity id a target frequency honouring
//! those anchors: the tail bucket sizes are reproduced *exactly* (the
//! generator injects tail entities by quota), while head frequencies follow
//! a log-linear interpolation through the published anchor ranks (the
//! generator samples head entities with probability proportional to their
//! target, so realized counts concentrate around it).

use crate::entities::{EntityId, EntityKind, EntityTable};

/// Unique ingredients in RecipeDB per the paper's §III.
pub const PLAN_TOTAL_INGREDIENTS: usize = 20_280;
/// Unique cooking processes in RecipeDB per the paper's §III.
pub const PLAN_TOTAL_PROCESSES: usize = 256;
/// Unique utensils in RecipeDB per the paper's §III.
pub const PLAN_TOTAL_UTENSILS: usize = 69;

/// Occurrences of the most frequent feature (`add`), per the paper's §III.
pub const TOP_FREQUENCY: u64 = 188_004;

/// Head anchors from Table III as `(rank_bound, frequency_bound)`: exactly
/// `rank_bound` features have frequency strictly above `frequency_bound`.
const HEAD_ANCHORS: [(usize, u64); 10] = [
    (12, 45_000),
    (13, 40_000),
    (17, 35_000),
    (19, 30_000),
    (24, 25_000),
    (34, 20_000),
    (43, 15_000),
    (57, 10_000),
    (106, 5_000),
    (304, 1_000),
];

/// Tail buckets from Table III as `(frequency, number_of_features)`.
/// The `<8 … <20` cumulative rows are split into per-frequency counts with a
/// decreasing profile.
const TAIL_BUCKETS: [(u64, usize); 19] = [
    (1, 11_738),
    (2, 2_277),
    (3, 987),
    (4, 618),
    (5, 453),
    (6, 321),
    (7, 233),
    (8, 220),
    (9, 169),
    (10, 80),
    (11, 70),
    (12, 60),
    (13, 50),
    (14, 38),
    (15, 55),
    (16, 48),
    (17, 40),
    (18, 33),
    (19, 29),
];

/// Number of entities the tail buckets account for (17,519 — Table III's
/// `<20` row).
pub fn tail_entity_count() -> usize {
    TAIL_BUCKETS.iter().map(|&(_, n)| n).sum()
}

/// A target corpus frequency for every entity in an [`EntityTable`].
#[derive(Debug, Clone)]
pub struct FrequencyPlan {
    targets: Vec<u64>,
    by_rank: Vec<EntityId>,
    scale: f64,
    head_count: usize,
}

impl FrequencyPlan {
    /// Calibrates a plan at full paper scale (118k recipes, 2.8M tokens).
    pub fn paper(table: &EntityTable) -> Self {
        Self::scaled(table, 1.0)
    }

    /// Calibrates a plan whose token mass is `scale` times the paper's.
    /// Tail quotas round down (rare entities vanish first, exactly as a
    /// subsampled corpus would behave).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn scaled(table: &EntityTable, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");

        let ranked = rank_entities(table);
        let tail_count = tail_entity_count().min(ranked.len().saturating_sub(HEAD_ANCHORS[9].0));
        let head_count = ranked.len() - tail_count;

        let mut targets = vec![0u64; table.len()];
        for (rank, &id) in ranked.iter().enumerate() {
            let full = if rank < head_count {
                head_frequency(rank, head_count)
            } else {
                tail_frequency(rank - head_count)
            };
            let scaled = (full as f64 * scale).round() as u64;
            targets[id.index()] = scaled;
        }
        Self {
            targets,
            by_rank: ranked,
            scale,
            head_count,
        }
    }

    /// Target corpus frequency for an entity (possibly 0 at small scales).
    pub fn target(&self, id: EntityId) -> u64 {
        self.targets[id.index()]
    }

    /// Scale factor the plan was built with.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Entities ordered from most to least frequent.
    pub fn by_rank(&self) -> &[EntityId] {
        &self.by_rank
    }

    /// Sum of all target frequencies — the planned corpus token mass.
    pub fn total_tokens(&self) -> u64 {
        self.targets.iter().sum()
    }

    /// Planned token mass contributed by one entity kind.
    pub fn kind_mass(&self, table: &EntityTable, kind: EntityKind) -> u64 {
        table
            .ids_of_kind(kind)
            .map(|i| self.targets[i as usize])
            .sum()
    }

    /// The `k` highest-target entities of a kind, most frequent first.
    pub fn head_of_kind(&self, table: &EntityTable, kind: EntityKind, k: usize) -> Vec<EntityId> {
        self.by_rank
            .iter()
            .copied()
            .filter(|&id| table.kind(id) == kind)
            .take(k)
            .collect()
    }

    /// Entities whose planned frequency is below 20 — the quota-injected
    /// tail — as `(entity, quota)` pairs, skipping zero quotas.
    pub fn tail_quotas(&self) -> Vec<(EntityId, u64)> {
        self.by_rank[self.head_count..]
            .iter()
            .map(|&id| (id, self.targets[id.index()]))
            .filter(|&(_, q)| q > 0)
            .collect()
    }

    /// Number of entities whose target lies in the head (sampled, not
    /// quota-injected).
    pub fn head_count(&self) -> usize {
        self.head_count
    }
}

/// Interleaves kinds into a global frequency ranking.
///
/// Real RecipeDB's extreme head is dominated by processes (`add`, `stir`,
/// `heat` occur in nearly every recipe) with staple ingredients and the
/// common cookware mixed in; the rare tail is exclusively compositional
/// ingredient names. We reproduce that: rank 0 is the first process
/// (`add`); every 3rd rank is a process and every 9th a utensil until each
/// kind is exhausted; every other rank is an ingredient in id order.
fn rank_entities(table: &EntityTable) -> Vec<EntityId> {
    let mut processes = table.ids_of_kind(EntityKind::Process);
    let mut utensils = table.ids_of_kind(EntityKind::Utensil);
    let mut ingredients = table.ids_of_kind(EntityKind::Ingredient);

    let mut out = Vec::with_capacity(table.len());
    let mut rank = 0usize;
    while out.len() < table.len() {
        let pick = if rank.is_multiple_of(3) {
            processes
                .next()
                .or_else(|| ingredients.next())
                .or_else(|| utensils.next())
        } else if rank % 9 == 4 {
            utensils
                .next()
                .or_else(|| ingredients.next())
                .or_else(|| processes.next())
        } else {
            ingredients
                .next()
                .or_else(|| processes.next())
                .or_else(|| utensils.next())
        };
        // One of the three iterators must still be non-empty here.
        out.push(EntityId(pick.expect("ranking exhausted prematurely")));
        rank += 1;
    }
    out
}

/// Piecewise log-linear interpolation that satisfies every head anchor *by
/// construction*: each anchor `(n, f)` bounds a rank interval whose values
/// must lie in `(f, f_prev]`, and we interpolate strictly inside that band.
fn head_frequency(rank: usize, head_count: usize) -> u64 {
    debug_assert!(rank < head_count);
    // Segments as (start_rank, end_rank_exclusive, start_freq, end_freq):
    // values run log-linearly from start_freq at start_rank down to
    // end_freq at end_rank - 1, and every value stays within the anchor
    // band because start/end are pulled 1-2% inside it.
    let mut prev_rank = 0usize;
    let mut prev_freq = TOP_FREQUENCY as f64;
    for &(n, f) in &HEAD_ANCHORS {
        let n = n.min(head_count);
        if rank < n {
            // Band (f, prev_freq]: interpolate from prev_freq (at prev_rank)
            // to just above f (at n - 1).
            let end = f as f64 * 1.01;
            return interp_log(rank, prev_rank, n - 1, prev_freq, end);
        }
        prev_rank = n;
        prev_freq = f as f64 * 0.99;
        if n == head_count {
            break;
        }
    }
    // Final stretch below the last anchor, down to frequency 20.
    interp_log(rank, prev_rank, head_count - 1, prev_freq, 20.0)
}

/// Log-linear interpolation of `rank` in `[r0, r1]` between `f0` and `f1`.
fn interp_log(rank: usize, r0: usize, r1: usize, f0: f64, f1: f64) -> u64 {
    if r1 <= r0 {
        return f1.round() as u64;
    }
    let t = (rank - r0) as f64 / (r1 - r0) as f64;
    (f0.ln() + t * (f1.ln() - f0.ln())).exp().round() as u64
}

/// Exact tail frequencies: walks the buckets from frequency 19 down to 1
/// (tail ranks are ordered most- to least-frequent).
fn tail_frequency(tail_rank: usize) -> u64 {
    let mut remaining = tail_rank;
    for &(freq, count) in TAIL_BUCKETS.iter().rev() {
        if remaining < count {
            return freq;
        }
        remaining -= count;
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_table() -> EntityTable {
        EntityTable::synthesize(
            PLAN_TOTAL_INGREDIENTS,
            PLAN_TOTAL_PROCESSES,
            PLAN_TOTAL_UTENSILS,
        )
    }

    #[test]
    fn tail_bucket_totals_match_table3() {
        assert_eq!(tail_entity_count(), 17_519);
        // cumulative spot checks against the published "<k" rows
        let below = |k: u64| -> usize {
            TAIL_BUCKETS
                .iter()
                .filter(|&&(f, _)| f < k)
                .map(|&(_, n)| n)
                .sum()
        };
        assert_eq!(below(2), 11_738);
        assert_eq!(below(3), 14_015);
        assert_eq!(below(4), 15_002);
        assert_eq!(below(5), 15_620);
        assert_eq!(below(6), 16_073);
        assert_eq!(below(7), 16_394);
        assert_eq!(below(8), 16_627);
        assert_eq!(below(10), 17_016);
        assert_eq!(below(15), 17_314);
        assert_eq!(below(20), 17_519);
    }

    #[test]
    fn head_anchors_reproduced() {
        let table = paper_table();
        let plan = FrequencyPlan::paper(&table);
        let mut freqs: Vec<u64> = plan.by_rank().iter().map(|&id| plan.target(id)).collect();
        // ranking must be monotone non-increasing
        for w in freqs.windows(2) {
            assert!(
                w[0] >= w[1],
                "plan frequencies not sorted: {} < {}",
                w[0],
                w[1]
            );
        }
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let above = |t: u64| freqs.iter().filter(|&&f| f > t).count();
        assert_eq!(above(45_000), 12);
        assert_eq!(above(40_000), 13);
        assert_eq!(above(35_000), 17);
        assert_eq!(above(30_000), 19);
        assert_eq!(above(25_000), 24);
        assert_eq!(above(20_000), 34);
        assert_eq!(above(15_000), 43);
        assert_eq!(above(10_000), 57);
        assert_eq!(above(5_000), 106);
        assert_eq!(above(1_000), 304);
    }

    #[test]
    fn top_entity_is_add_at_paper_frequency() {
        let table = paper_table();
        let plan = FrequencyPlan::paper(&table);
        let top = plan.by_rank()[0];
        assert_eq!(table.name(top), "add");
        assert_eq!(plan.target(top), TOP_FREQUENCY);
    }

    #[test]
    fn tail_quotas_match_buckets_exactly() {
        let table = paper_table();
        let plan = FrequencyPlan::paper(&table);
        let quotas = plan.tail_quotas();
        assert_eq!(quotas.len(), 17_519);
        let hapax = quotas.iter().filter(|&&(_, q)| q == 1).count();
        assert_eq!(hapax, 11_738);
    }

    #[test]
    fn total_token_mass_is_plausible() {
        let table = paper_table();
        let plan = FrequencyPlan::paper(&table);
        let total = plan.total_tokens();
        // ~24 tokens per recipe × 118k recipes → 2–4M tokens
        assert!(
            (1_500_000..5_000_000).contains(&total),
            "token mass {total} outside plausible range"
        );
    }

    #[test]
    fn processes_and_utensils_never_in_tail() {
        let table = paper_table();
        let plan = FrequencyPlan::paper(&table);
        for (id, _) in plan.tail_quotas() {
            assert_eq!(
                table.kind(id),
                EntityKind::Ingredient,
                "non-ingredient {} in tail",
                table.name(id)
            );
        }
    }

    #[test]
    fn scaled_plan_shrinks_mass_proportionally() {
        let table = EntityTable::synthesize(2_000, 128, 45);
        let full = FrequencyPlan::scaled(&table, 1.0);
        let tenth = FrequencyPlan::scaled(&table, 0.1);
        let ratio = tenth.total_tokens() as f64 / full.total_tokens() as f64;
        assert!((0.05..0.2).contains(&ratio), "scaled ratio {ratio}");
    }

    #[test]
    fn head_of_kind_returns_most_frequent() {
        let table = paper_table();
        let plan = FrequencyPlan::paper(&table);
        let top_proc = plan.head_of_kind(&table, EntityKind::Process, 3);
        assert_eq!(table.name(top_proc[0]), "add");
        assert!(plan.target(top_proc[0]) >= plan.target(top_proc[1]));
        assert!(plan.target(top_proc[1]) >= plan.target(top_proc[2]));
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_panics() {
        let table = EntityTable::synthesize(100, 30, 10);
        let _ = FrequencyPlan::scaled(&table, 0.0);
    }
}
