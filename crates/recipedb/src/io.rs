//! JSONL persistence for recipe corpora.
//!
//! One JSON object per line, mirroring how the paper's artifact repository
//! distributes its processed dataset. Only recipes are serialized; the
//! entity table is deterministic (see
//! [`EntityTable::synthesize`](crate::EntityTable::synthesize)) and is
//! reconstructed on load from the header line.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Recipe};
use crate::entities::EntityTable;

/// First line of a JSONL corpus file: the vocabulary shape needed to
/// rebuild the [`EntityTable`].
#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
struct Header {
    format: String,
    ingredients: usize,
    processes: usize,
    utensils: usize,
    recipes: usize,
}

const FORMAT: &str = "recipedb-jsonl-v1";

/// Writes a dataset as JSONL: a header line followed by one recipe per line.
pub fn write_jsonl(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let header = Header {
        format: FORMAT.to_string(),
        ingredients: dataset.table.num_ingredients(),
        processes: dataset.table.num_processes(),
        utensils: dataset.table.num_utensils(),
        recipes: dataset.recipes.len(),
    };
    serde_json::to_writer(&mut w, &header)?;
    w.write_all(b"\n")?;
    for recipe in &dataset.recipes {
        serde_json::to_writer(&mut w, recipe)?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// What a lossy load encountered, for caller-side logging and policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Non-empty recipe lines seen after the header.
    pub lines: usize,
    /// Recipes parsed successfully.
    pub loaded: usize,
    /// Malformed lines skipped.
    pub skipped: usize,
    /// Recipe count the header promised.
    pub promised: usize,
    /// Parse error of the first skipped line, for diagnostics.
    pub first_error: Option<String>,
}

impl LoadReport {
    /// One-line human summary (`"1200 recipes (3 malformed lines skipped)"`).
    pub fn summary(&self) -> String {
        if self.skipped == 0 {
            format!("{} recipes", self.loaded)
        } else {
            format!(
                "{} recipes ({} malformed line{} skipped)",
                self.loaded,
                self.skipped,
                if self.skipped == 1 { "" } else { "s" }
            )
        }
    }
}

/// Reads a dataset previously written by [`write_jsonl`].
///
/// Strict: any malformed recipe line or a count mismatch against the
/// header is an error. Use [`read_jsonl_lossy`] to salvage what parses.
///
/// # Errors
///
/// Returns `InvalidData` on a missing/garbled header, a format-version
/// mismatch, a malformed recipe line, or a recipe count that disagrees
/// with the header.
pub fn read_jsonl(path: &Path) -> io::Result<Dataset> {
    let (dataset, report) = read_jsonl_lossy(path)?;
    if report.skipped > 0 {
        let detail = report.first_error.unwrap_or_default();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad recipe: {detail}"),
        ));
    }
    if report.loaded != report.promised {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "header promised {} recipes, found {}",
                report.promised, report.loaded
            ),
        ));
    }
    Ok(dataset)
}

/// Reads a corpus, skipping malformed recipe lines instead of failing —
/// the degraded-mode loader for partially corrupted corpus files. The
/// [`LoadReport`] says how much was salvaged; callers decide whether a
/// partial corpus is acceptable.
///
/// # Errors
///
/// The header must still be intact: `InvalidData` on a missing/garbled
/// header or format-version mismatch (without it the entity table cannot
/// be rebuilt, so nothing is salvageable).
pub fn read_jsonl_lossy(path: &Path) -> io::Result<(Dataset, LoadReport)> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty corpus file"))??;
    let header: Header = serde_json::from_str(&header_line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {e}")))?;
    if header.format != FORMAT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported corpus format {:?}", header.format),
        ));
    }

    let table = EntityTable::synthesize(header.ingredients, header.processes, header.utensils);
    let mut recipes = Vec::with_capacity(header.recipes);
    let mut report = LoadReport {
        promised: header.recipes,
        ..LoadReport::default()
    };
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        match serde_json::from_str::<Recipe>(&line) {
            Ok(recipe) => {
                recipes.push(recipe);
                report.loaded += 1;
            }
            Err(e) => {
                report.skipped += 1;
                if report.first_error.is_none() {
                    report.first_error = Some(e.to_string());
                }
            }
        }
    }
    Ok((Dataset { table, recipes }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::RecipeId;
    use crate::entities::EntityId;
    use crate::taxonomy::CuisineId;

    fn sample() -> Dataset {
        let table = EntityTable::synthesize(50, 10, 5);
        let recipes = vec![
            Recipe {
                id: RecipeId(0),
                cuisine: CuisineId(12),
                tokens: vec![EntityId(3), EntityId(50), EntityId(60)],
            },
            Recipe {
                id: RecipeId(1),
                cuisine: CuisineId(0),
                tokens: vec![EntityId(7)],
            },
        ];
        Dataset { table, recipes }
    }

    #[test]
    fn roundtrip_preserves_recipes() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let d = sample();
        write_jsonl(&d, &path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.recipes, d.recipes);
        assert_eq!(back.table.len(), d.table.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_corpus() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.jsonl");
        let d = sample();
        write_jsonl(&d, &path).unwrap();
        // drop the last line
        let contents = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = contents.lines().collect();
        std::fs::write(&path, truncated[..truncated.len() - 1].join("\n")).unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert!(err.to_string().contains("promised"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lossy_load_skips_garbage_lines_and_reports_them() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lossy.jsonl");
        let d = sample();
        write_jsonl(&d, &path).unwrap();
        // splice garbage between the two valid recipes
        let contents = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = contents.lines().collect();
        lines.insert(2, "{\"id\": 7, \"cuisine\":"); // truncated mid-object
        lines.insert(3, "totally not json");
        std::fs::write(&path, lines.join("\n")).unwrap();

        // strict loader refuses
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad recipe"), "got: {err}");

        // lossy loader salvages both real recipes and counts the damage
        let (back, report) = read_jsonl_lossy(&path).unwrap();
        assert_eq!(back.recipes, d.recipes);
        assert_eq!(report.loaded, 2);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.lines, 4);
        assert_eq!(report.promised, 2);
        assert!(report.first_error.is_some());
        assert!(report.summary().contains("2 malformed lines skipped"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lossy_load_of_truncated_tail_reports_shortfall() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lossy_truncated.jsonl");
        let d = sample();
        write_jsonl(&d, &path).unwrap();
        // crash mid-write: the final recipe line is cut short
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &contents[..contents.len() - 10]).unwrap();
        let (back, report) = read_jsonl_lossy(&path).unwrap();
        assert_eq!(back.recipes.len(), 1);
        assert_eq!(report.loaded, 1);
        assert_eq!(report.skipped, 1);
        assert!(report.loaded < report.promised);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lossy_load_still_requires_a_header() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lossy_headerless.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = read_jsonl_lossy(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad header"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }
}
