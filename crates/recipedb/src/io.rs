//! JSONL persistence for recipe corpora.
//!
//! One JSON object per line, mirroring how the paper's artifact repository
//! distributes its processed dataset. Only recipes are serialized; the
//! entity table is deterministic (see
//! [`EntityTable::synthesize`](crate::EntityTable::synthesize)) and is
//! reconstructed on load from the header line.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Recipe};
use crate::entities::EntityTable;

/// First line of a JSONL corpus file: the vocabulary shape needed to
/// rebuild the [`EntityTable`].
#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
struct Header {
    format: String,
    ingredients: usize,
    processes: usize,
    utensils: usize,
    recipes: usize,
}

const FORMAT: &str = "recipedb-jsonl-v1";

/// Writes a dataset as JSONL: a header line followed by one recipe per line.
pub fn write_jsonl(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let header = Header {
        format: FORMAT.to_string(),
        ingredients: dataset.table.num_ingredients(),
        processes: dataset.table.num_processes(),
        utensils: dataset.table.num_utensils(),
        recipes: dataset.recipes.len(),
    };
    serde_json::to_writer(&mut w, &header)?;
    w.write_all(b"\n")?;
    for recipe in &dataset.recipes {
        serde_json::to_writer(&mut w, recipe)?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a dataset previously written by [`write_jsonl`].
///
/// # Errors
///
/// Returns `InvalidData` on a missing/garbled header, a format-version
/// mismatch, or a recipe count that disagrees with the header.
pub fn read_jsonl(path: &Path) -> io::Result<Dataset> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty corpus file"))??;
    let header: Header = serde_json::from_str(&header_line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {e}")))?;
    if header.format != FORMAT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported corpus format {:?}", header.format),
        ));
    }

    let table = EntityTable::synthesize(header.ingredients, header.processes, header.utensils);
    let mut recipes = Vec::with_capacity(header.recipes);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let recipe: Recipe = serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad recipe: {e}")))?;
        recipes.push(recipe);
    }
    if recipes.len() != header.recipes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "header promised {} recipes, found {}",
                header.recipes,
                recipes.len()
            ),
        ));
    }
    Ok(Dataset { table, recipes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::RecipeId;
    use crate::entities::EntityId;
    use crate::taxonomy::CuisineId;

    fn sample() -> Dataset {
        let table = EntityTable::synthesize(50, 10, 5);
        let recipes = vec![
            Recipe {
                id: RecipeId(0),
                cuisine: CuisineId(12),
                tokens: vec![EntityId(3), EntityId(50), EntityId(60)],
            },
            Recipe {
                id: RecipeId(1),
                cuisine: CuisineId(0),
                tokens: vec![EntityId(7)],
            },
        ];
        Dataset { table, recipes }
    }

    #[test]
    fn roundtrip_preserves_recipes() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let d = sample();
        write_jsonl(&d, &path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.recipes, d.recipes);
        assert_eq!(back.table.len(), d.table.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_corpus() {
        let dir = std::env::temp_dir().join("recipedb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.jsonl");
        let d = sample();
        write_jsonl(&d, &path).unwrap();
        // drop the last line
        let contents = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = contents.lines().collect();
        std::fs::write(&path, truncated[..truncated.len() - 1].join("\n")).unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert!(err.to_string().contains("promised"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }
}
