//! Dataset statistics: everything needed to regenerate the paper's Tables
//! II and III and its feature-frequency figures.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::entities::{EntityId, EntityKind};
use crate::taxonomy::{CuisineId, NUM_CUISINES};

/// One row of a cumulative frequency spectrum: `count` features sit on the
/// given side of `bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectrumRow {
    /// The frequency bound.
    pub bound: u64,
    /// Number of features beyond the bound.
    pub count: usize,
}

/// The paper's Table III high-frequency rows (`count` features occur more
/// than `bound` times).
pub const PAPER_TABLE3_HIGH: [SpectrumRow; 10] = [
    SpectrumRow {
        bound: 1_000,
        count: 304,
    },
    SpectrumRow {
        bound: 5_000,
        count: 106,
    },
    SpectrumRow {
        bound: 10_000,
        count: 57,
    },
    SpectrumRow {
        bound: 15_000,
        count: 43,
    },
    SpectrumRow {
        bound: 20_000,
        count: 34,
    },
    SpectrumRow {
        bound: 25_000,
        count: 24,
    },
    SpectrumRow {
        bound: 30_000,
        count: 19,
    },
    SpectrumRow {
        bound: 35_000,
        count: 17,
    },
    SpectrumRow {
        bound: 40_000,
        count: 13,
    },
    SpectrumRow {
        bound: 45_000,
        count: 12,
    },
];

/// The paper's Table III low-frequency rows (`count` features occur fewer
/// than `bound` times, among features that occur at all).
pub const PAPER_TABLE3_LOW: [SpectrumRow; 10] = [
    SpectrumRow {
        bound: 2,
        count: 11_738,
    },
    SpectrumRow {
        bound: 3,
        count: 14_015,
    },
    SpectrumRow {
        bound: 4,
        count: 15_002,
    },
    SpectrumRow {
        bound: 5,
        count: 15_620,
    },
    SpectrumRow {
        bound: 6,
        count: 16_073,
    },
    SpectrumRow {
        bound: 7,
        count: 16_394,
    },
    SpectrumRow {
        bound: 8,
        count: 16_627,
    },
    SpectrumRow {
        bound: 10,
        count: 17_016,
    },
    SpectrumRow {
        bound: 15,
        count: 17_314,
    },
    SpectrumRow {
        bound: 20,
        count: 17_519,
    },
];

/// Aggregate statistics of a generated corpus.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Recipes per cuisine (Table II).
    pub per_cuisine: [usize; NUM_CUISINES],
    /// Corpus frequency of every entity id.
    pub frequencies: HashMap<EntityId, u64>,
    /// Total token count.
    pub total_tokens: u64,
    /// Number of distinct entities that occur at least once.
    pub distinct_features: usize,
    /// Mean recipe length in tokens.
    pub mean_recipe_length: f64,
    /// Document-term sparsity ratio: 1 − (mean distinct entities per recipe
    /// / distinct features). The paper reports 99.50%.
    pub sparsity: f64,
}

impl DatasetStats {
    /// Computes all statistics in one pass over the corpus.
    pub fn compute(dataset: &Dataset) -> Self {
        let mut per_cuisine = [0usize; NUM_CUISINES];
        let mut frequencies: HashMap<EntityId, u64> = HashMap::new();
        let mut total_tokens = 0u64;
        let mut distinct_per_recipe_sum = 0usize;

        let mut seen = Vec::new();
        for recipe in &dataset.recipes {
            per_cuisine[recipe.cuisine.index()] += 1;
            total_tokens += recipe.tokens.len() as u64;
            seen.clear();
            for &t in &recipe.tokens {
                *frequencies.entry(t).or_insert(0) += 1;
                if !seen.contains(&t) {
                    seen.push(t);
                }
            }
            distinct_per_recipe_sum += seen.len();
        }

        let distinct_features = frequencies.len();
        let n = dataset.recipes.len().max(1);
        let mean_distinct = distinct_per_recipe_sum as f64 / n as f64;
        let sparsity = if distinct_features == 0 {
            0.0
        } else {
            1.0 - mean_distinct / distinct_features as f64
        };

        Self {
            per_cuisine,
            frequencies,
            total_tokens,
            distinct_features,
            mean_recipe_length: total_tokens as f64 / n as f64,
            sparsity,
        }
    }

    /// Number of features occurring strictly more than `bound` times.
    pub fn features_above(&self, bound: u64) -> usize {
        self.frequencies.values().filter(|&&f| f > bound).count()
    }

    /// Number of features occurring strictly fewer than `bound` times
    /// (among features that occur at all).
    pub fn features_below(&self, bound: u64) -> usize {
        self.frequencies.values().filter(|&&f| f < bound).count()
    }

    /// The `k` most frequent entities with their counts, descending.
    pub fn top_features(&self, k: usize) -> Vec<(EntityId, u64)> {
        let mut v: Vec<(EntityId, u64)> =
            self.frequencies.iter().map(|(&id, &f)| (id, f)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Corpus frequency per kind: `(ingredients, processes, utensils)`.
    pub fn mass_by_kind(&self, dataset: &Dataset) -> (u64, u64, u64) {
        let mut m = (0u64, 0u64, 0u64);
        for (&id, &f) in &self.frequencies {
            match dataset.table.kind(id) {
                EntityKind::Ingredient => m.0 += f,
                EntityKind::Process => m.1 += f,
                EntityKind::Utensil => m.2 += f,
            }
        }
        m
    }

    /// Recipes in a specific cuisine.
    pub fn cuisine_count(&self, cuisine: CuisineId) -> usize {
        self.per_cuisine[cuisine.index()]
    }
}

/// Histogram of recipe lengths in fixed-width buckets:
/// `(bucket_start, count)` pairs covering every recipe.
pub fn length_histogram(dataset: &Dataset, bucket_width: usize) -> Vec<(usize, usize)> {
    assert!(bucket_width > 0, "bucket width must be positive");
    let mut buckets: Vec<usize> = Vec::new();
    for r in &dataset.recipes {
        let b = r.tokens.len() / bucket_width;
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i * bucket_width, c))
        .collect()
}

/// Cumulative spectrum of a frequency map at the paper's Table III bounds:
/// `(high_rows, low_rows)` matching the layout of [`PAPER_TABLE3_HIGH`] and
/// [`PAPER_TABLE3_LOW`].
pub fn cumulative_spectrum(stats: &DatasetStats) -> (Vec<SpectrumRow>, Vec<SpectrumRow>) {
    let high = PAPER_TABLE3_HIGH
        .iter()
        .map(|row| SpectrumRow {
            bound: row.bound,
            count: stats.features_above(row.bound),
        })
        .collect();
    let low = PAPER_TABLE3_LOW
        .iter()
        .map(|row| SpectrumRow {
            bound: row.bound,
            count: stats.features_below(row.bound),
        })
        .collect();
    (high, low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Recipe, RecipeId};
    use crate::entities::{EntityId, EntityTable};

    fn make(recipes: Vec<Vec<u32>>) -> Dataset {
        let table = EntityTable::synthesize(20, 5, 3);
        let recipes = recipes
            .into_iter()
            .enumerate()
            .map(|(i, toks)| Recipe {
                id: RecipeId(i as u32),
                cuisine: CuisineId((i % 3) as u8),
                tokens: toks.into_iter().map(EntityId).collect(),
            })
            .collect();
        Dataset { table, recipes }
    }

    #[test]
    fn frequencies_counted() {
        let d = make(vec![vec![0, 0, 1], vec![1, 2]]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.frequencies[&EntityId(0)], 2);
        assert_eq!(s.frequencies[&EntityId(1)], 2);
        assert_eq!(s.frequencies[&EntityId(2)], 1);
        assert_eq!(s.total_tokens, 5);
        assert_eq!(s.distinct_features, 3);
    }

    #[test]
    fn spectrum_bounds() {
        let d = make(vec![vec![0, 0, 0, 1], vec![0, 1, 2]]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.features_above(1), 2); // 0 (4x) and 1 (2x)
        assert_eq!(s.features_above(3), 1); // just 0
        assert_eq!(s.features_below(2), 1); // just 2 (1x)
    }

    #[test]
    fn top_features_ordered() {
        let d = make(vec![vec![5, 5, 5, 7, 7, 9]]);
        let s = DatasetStats::compute(&d);
        let top = s.top_features(2);
        assert_eq!(top[0], (EntityId(5), 3));
        assert_eq!(top[1], (EntityId(7), 2));
    }

    #[test]
    fn per_cuisine_counts() {
        let d = make(vec![vec![0], vec![1], vec![2], vec![3]]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.cuisine_count(CuisineId(0)), 2);
        assert_eq!(s.cuisine_count(CuisineId(1)), 1);
    }

    #[test]
    fn sparsity_increases_with_vocab() {
        // one recipe using 2 of 3 occurring features → sparsity 1 - 2/3
        let d = make(vec![vec![0, 1], vec![2]]);
        let s = DatasetStats::compute(&d);
        let mean_distinct = (2.0 + 1.0) / 2.0;
        assert!((s.sparsity - (1.0 - mean_distinct / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn length_histogram_counts_every_recipe() {
        let d = make(vec![
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2, 3, 4],
        ]);
        let hist = length_histogram(&d, 2);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        // lengths 1, 2, 3, 5 with width 2 → buckets 0, 1, 1, 2
        assert_eq!(hist[0], (0, 1));
        assert_eq!(hist[1], (2, 2));
        assert_eq!(hist[2], (4, 1));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let d = make(vec![vec![0]]);
        let _ = length_histogram(&d, 0);
    }

    #[test]
    fn paper_constants_are_consistent() {
        // high rows must be decreasing in count, low rows increasing
        for w in PAPER_TABLE3_HIGH.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        for w in PAPER_TABLE3_LOW.windows(2) {
            assert!(w[0].count <= w[1].count);
        }
    }
}
