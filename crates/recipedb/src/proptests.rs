//! Property-based tests over the dataset substrate.

use proptest::prelude::*;

use crate::{
    generate, train_val_test_split, CuisineId, DatasetStats, EntityTable, FrequencyPlan,
    GeneratorConfig,
};

proptest! {
    // generation is expensive; keep the case count low
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn generator_is_deterministic_per_seed(seed in 0u64..500) {
        let config = GeneratorConfig { seed, scale: 0.002, ..Default::default() };
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(a.recipes, b.recipes);
    }

    #[test]
    fn every_recipe_has_tokens_and_valid_labels(seed in 0u64..500) {
        let config = GeneratorConfig { seed, scale: 0.002, ..Default::default() };
        let d = generate(&config);
        for r in &d.recipes {
            prop_assert!(!r.tokens.is_empty());
            prop_assert!(r.cuisine.index() < 26);
            for &t in &r.tokens {
                prop_assert!(t.index() < d.table.len());
            }
        }
    }

    #[test]
    fn split_parts_partition_any_seed(gen_seed in 0u64..100, split_seed in 0u64..100) {
        let config = GeneratorConfig { seed: gen_seed, scale: 0.002, ..Default::default() };
        let d = generate(&config);
        let s = train_val_test_split(&d, split_seed);
        prop_assert_eq!(s.len(), d.len());
        let mut all: Vec<usize> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), d.len());
    }

    #[test]
    fn stats_token_accounting_balances(seed in 0u64..500) {
        let config = GeneratorConfig { seed, scale: 0.002, ..Default::default() };
        let d = generate(&config);
        let stats = DatasetStats::compute(&d);
        let freq_sum: u64 = stats.frequencies.values().sum();
        prop_assert_eq!(freq_sum, stats.total_tokens);
        let by_kind = stats.mass_by_kind(&d);
        prop_assert_eq!(by_kind.0 + by_kind.1 + by_kind.2, stats.total_tokens);
    }
}

proptest! {
    #[test]
    fn plan_is_monotone_at_any_scale(scale in 0.01f64..1.0) {
        let table = EntityTable::synthesize(3_000, 128, 45);
        let plan = FrequencyPlan::scaled(&table, scale);
        let freqs: Vec<u64> = plan.by_rank().iter().map(|&id| plan.target(id)).collect();
        for w in freqs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn cuisine_ids_roundtrip(idx in 0u8..26) {
        let id = CuisineId(idx);
        prop_assert_eq!(id.index(), idx as usize);
        prop_assert!(!id.name().is_empty());
    }
}
