//! The 26-cuisine, 6-continent taxonomy of RecipeDB with the exact recipe
//! counts published in the paper's Table II.

use serde::{Deserialize, Serialize};

/// Continental region a cuisine belongs to (the `Continent` column of
/// RecipeDB, visible in the paper's Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// Middle Eastern and African cuisines (RecipeDB files both under
    /// "African", as Table I's Middle Eastern row shows).
    African,
    /// East, South and Southeast Asian cuisines.
    Asian,
    /// European cuisines.
    European,
    /// Central/South American, Mexican and Caribbean cuisines.
    LatinAmerican,
    /// US and Canadian cuisines.
    NorthAmerican,
    /// Australian cuisine.
    Oceanic,
}

impl Continent {
    /// Human-readable name matching RecipeDB's column values.
    pub fn name(self) -> &'static str {
        match self {
            Continent::African => "African",
            Continent::Asian => "Asian",
            Continent::European => "European",
            Continent::LatinAmerican => "Latin American",
            Continent::NorthAmerican => "North American",
            Continent::Oceanic => "Oceanic",
        }
    }

    /// All continents in declaration order.
    pub fn all() -> [Continent; 6] {
        [
            Continent::African,
            Continent::Asian,
            Continent::European,
            Continent::LatinAmerican,
            Continent::NorthAmerican,
            Continent::Oceanic,
        ]
    }
}

/// Index into [`CUISINES`]; the class label of the classification task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CuisineId(pub u8);

impl CuisineId {
    /// The cuisine's static metadata.
    pub fn info(self) -> &'static CuisineInfo {
        &CUISINES[self.0 as usize]
    }

    /// Cuisine name as printed in Table II.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Class index as `usize` (for metrics and one-hot targets).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all 26 cuisine ids.
    pub fn all() -> impl Iterator<Item = CuisineId> {
        (0..NUM_CUISINES as u8).map(CuisineId)
    }
}

/// Static description of one cuisine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuisineInfo {
    /// Name exactly as in Table II.
    pub name: &'static str,
    /// Continental region.
    pub continent: Continent,
    /// Recipe count published in Table II.
    pub paper_count: u32,
}

/// Number of cuisine classes.
pub const NUM_CUISINES: usize = 26;

/// The paper's Table II, verbatim.
///
/// Note: these counts sum to 118,171 while the paper's prose says 118,071
/// recipes and quotes split sizes summing to 118,051 — the source tables are
/// internally inconsistent by ~0.1%. We treat Table II as ground truth.
pub const CUISINES: [CuisineInfo; NUM_CUISINES] = [
    CuisineInfo {
        name: "Australian",
        continent: Continent::Oceanic,
        paper_count: 5823,
    },
    CuisineInfo {
        name: "Belgian",
        continent: Continent::European,
        paper_count: 1060,
    },
    CuisineInfo {
        name: "Canadian",
        continent: Continent::NorthAmerican,
        paper_count: 6700,
    },
    CuisineInfo {
        name: "Caribbean",
        continent: Continent::LatinAmerican,
        paper_count: 3026,
    },
    CuisineInfo {
        name: "Central American",
        continent: Continent::LatinAmerican,
        paper_count: 460,
    },
    CuisineInfo {
        name: "Chinese and Mongolian",
        continent: Continent::Asian,
        paper_count: 5896,
    },
    CuisineInfo {
        name: "Deutschland",
        continent: Continent::European,
        paper_count: 4323,
    },
    CuisineInfo {
        name: "Eastern European",
        continent: Continent::European,
        paper_count: 2503,
    },
    CuisineInfo {
        name: "French",
        continent: Continent::European,
        paper_count: 6381,
    },
    CuisineInfo {
        name: "Greek",
        continent: Continent::European,
        paper_count: 4185,
    },
    CuisineInfo {
        name: "Indian Subcontinent",
        continent: Continent::Asian,
        paper_count: 6464,
    },
    CuisineInfo {
        name: "Irish",
        continent: Continent::European,
        paper_count: 2532,
    },
    CuisineInfo {
        name: "Italian",
        continent: Continent::European,
        paper_count: 16582,
    },
    CuisineInfo {
        name: "Japanese",
        continent: Continent::Asian,
        paper_count: 2041,
    },
    CuisineInfo {
        name: "Korean",
        continent: Continent::Asian,
        paper_count: 668,
    },
    CuisineInfo {
        name: "Mexican",
        continent: Continent::LatinAmerican,
        paper_count: 14463,
    },
    CuisineInfo {
        name: "Middle Eastern",
        continent: Continent::African,
        paper_count: 3905,
    },
    CuisineInfo {
        name: "Northern Africa",
        continent: Continent::African,
        paper_count: 1611,
    },
    CuisineInfo {
        name: "Rest Africa",
        continent: Continent::African,
        paper_count: 2740,
    },
    CuisineInfo {
        name: "Scandinavian",
        continent: Continent::European,
        paper_count: 2811,
    },
    CuisineInfo {
        name: "South American",
        continent: Continent::LatinAmerican,
        paper_count: 7176,
    },
    CuisineInfo {
        name: "Southeast Asian",
        continent: Continent::Asian,
        paper_count: 1940,
    },
    CuisineInfo {
        name: "Spanish and Portuguese",
        continent: Continent::European,
        paper_count: 2844,
    },
    CuisineInfo {
        name: "Thai",
        continent: Continent::Asian,
        paper_count: 2605,
    },
    CuisineInfo {
        name: "UK",
        continent: Continent::European,
        paper_count: 4401,
    },
    CuisineInfo {
        name: "US",
        continent: Continent::NorthAmerican,
        paper_count: 5031,
    },
];

/// Sum of the Table II counts (the generated corpus size at paper scale).
pub fn paper_total_recipes() -> u32 {
    CUISINES.iter().map(|c| c.paper_count).sum()
}

/// Cuisines sharing a continent with `cuisine`, excluding itself — the
/// "sibling" set used to plant confusable signal.
pub fn siblings(cuisine: CuisineId) -> Vec<CuisineId> {
    let continent = cuisine.info().continent;
    CuisineId::all()
        .filter(|&c| c != cuisine && c.info().continent == continent)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_cuisines() {
        assert_eq!(CUISINES.len(), 26);
        assert_eq!(CuisineId::all().count(), 26);
    }

    #[test]
    fn counts_match_paper_table2_sum() {
        // Table II sums to 118,171 (see the doc comment for the known
        // inconsistency with the prose's 118,071).
        assert_eq!(paper_total_recipes(), 118_171);
    }

    #[test]
    fn specific_counts_spot_checked() {
        let by_name = |n: &str| {
            CUISINES
                .iter()
                .find(|c| c.name == n)
                .expect("cuisine present")
                .paper_count
        };
        assert_eq!(by_name("Italian"), 16_582);
        assert_eq!(by_name("Mexican"), 14_463);
        assert_eq!(by_name("Central American"), 460);
        assert_eq!(by_name("Korean"), 668);
    }

    #[test]
    fn every_continent_is_populated() {
        for cont in Continent::all() {
            assert!(
                CUISINES.iter().any(|c| c.continent == cont),
                "continent {cont:?} has no cuisines"
            );
        }
    }

    #[test]
    fn siblings_share_continent_and_exclude_self() {
        let italian = CuisineId::all().find(|c| c.name() == "Italian").unwrap();
        let sibs = siblings(italian);
        assert!(!sibs.contains(&italian));
        assert!(sibs
            .iter()
            .all(|s| s.info().continent == Continent::European));
        // 10 European cuisines total → 9 siblings
        assert_eq!(sibs.len(), 9);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = CUISINES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CUISINES);
    }
}
