//! Synthetic RecipeDB: a generator calibrated to the published statistics of
//! the RecipeDB dataset used by *"Classification of Cuisines from
//! Sequentially Structured Recipes"* (Sharma et al., 2020).
//!
//! The real RecipeDB (118k recipes scraped from AllRecipes, Epicurious, Food
//! Network and TarlaDalal) is gated behind a research portal, so this crate
//! reproduces its *statistical shape* instead:
//!
//! * the 26-cuisine × 6-continent taxonomy with the exact per-cuisine recipe
//!   counts of the paper's Table II (`taxonomy`);
//! * a ~20,400-entity vocabulary (20,280 ingredients, 256 cooking processes,
//!   69 utensils) whose corpus frequency spectrum is calibrated to the
//!   paper's Table III — 11,738 hapax entities, 304 entities above 1,000
//!   occurrences, a top process (`add`) near 188k occurrences (`vocab`);
//! * recipes as *sequences*: ingredients first, then an ordered chain of
//!   processes interleaved with utensils, mirroring the sample rows of
//!   Table I (`generator`).
//!
//! Crucially for the paper's hypothesis, the generator plants two separable
//! kinds of signal:
//!
//! 1. **bag signal** — cuisine-tilted unigram preferences that bag-of-words
//!    models (TF-IDF + LR/NB/SVM/RF) can exploit, deliberately bounded by
//!    sharing signature entities between sibling cuisines of one continent;
//! 2. **order signal** — cuisine-specific *ordered* process motifs where
//!    confusable cuisine pairs use the same process multiset in different
//!    orders, so only order-aware models (LSTM, transformers) can separate
//!    them.
//!
//! Everything is deterministic per seed.

mod dataset;
mod entities;
mod generator;
mod io;
mod split;
mod stats;
mod taxonomy;
mod vocab;

pub use dataset::{Dataset, Recipe, RecipeId};
pub use entities::{EntityId, EntityKind, EntityTable};
pub use generator::{generate, GeneratorConfig, SignalProfile};
pub use io::{read_jsonl, read_jsonl_lossy, write_jsonl, LoadReport};
pub use split::{train_val_test_split, Split};
pub use stats::{
    cumulative_spectrum, length_histogram, DatasetStats, SpectrumRow, PAPER_TABLE3_HIGH,
    PAPER_TABLE3_LOW,
};
pub use taxonomy::{
    paper_total_recipes, siblings, Continent, CuisineId, CuisineInfo, CUISINES, NUM_CUISINES,
};
pub use vocab::{FrequencyPlan, PLAN_TOTAL_INGREDIENTS, PLAN_TOTAL_PROCESSES, PLAN_TOTAL_UTENSILS};

#[cfg(test)]
mod proptests;
