//! Nested timed spans with a per-thread parent stack.
//!
//! Opening a span (when tracing is enabled) allocates an id, records the
//! innermost open span on the same thread as its parent, and reads the
//! clock once. Closing it reads the clock again and appends a finished
//! [`SpanRecord`] to the global list under a short-lived lock. Disabled,
//! [`span`] is one relaxed atomic load and returns an inert guard.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique id.
    pub id: u64,
    /// Id of the innermost span open on the same thread at open time.
    pub parent: Option<u64>,
    /// Span label.
    pub name: Cow<'static, str>,
    /// Debug-formatted OS thread id of the opening thread.
    pub thread: String,
    /// Nanoseconds since the trace epoch (first span ever opened).
    pub start_ns: u128,
    /// Wall-clock duration.
    pub dur_ns: u128,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn finished_lock() -> MutexGuard<'static, Vec<SpanRecord>> {
    static FINISHED: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    FINISHED
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Ids of spans currently open on this thread, outermost first.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Opens a timed span; drop the guard to close it. When tracing is
/// disabled this is a no-op costing one atomic load (the `name` argument
/// is still evaluated — pass `&'static str` on hot paths so no formatting
/// happens either way, or gate `format!` names on [`crate::enabled`]).
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { open: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let epoch = epoch();
    SpanGuard {
        open: Some(OpenSpan {
            id,
            parent,
            name: name.into(),
            started: Instant::now(),
            start_ns: epoch.elapsed().as_nanos(),
        }),
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: Cow<'static, str>,
    started: Instant,
    start_ns: u128,
}

/// RAII guard returned by [`span`]; records the span when dropped.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur_ns = open.started.elapsed().as_nanos();
        OPEN.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are dropped in reverse open order within a thread, so
            // this is almost always a pop from the top; retain() keeps the
            // stack correct even under unusual drop orders.
            if stack.last() == Some(&open.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != open.id);
            }
        });
        finished_lock().push(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            thread: format!("{:?}", std::thread::current().id()),
            start_ns: open.start_ns,
            dur_ns,
        });
    }
}

/// All finished spans so far, in start order.
pub(crate) fn finished() -> Vec<SpanRecord> {
    let mut spans = finished_lock().clone();
    spans.sort_by_key(|s| s.start_ns);
    spans
}

/// Clears the finished-span list.
pub(crate) fn reset() {
    finished_lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_across_threads_keep_their_own_parents() {
        let _x = crate::tests::exclusive();
        crate::enable();
        crate::reset();
        {
            let _main = span("main-side");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _worker = span("worker-side");
                });
            });
        }
        let spans = finished();
        crate::disable();
        let worker = spans.iter().find(|s| s.name == "worker-side").unwrap();
        // the worker thread had no open span of its own → it is a root,
        // not a child of the main thread's span
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn guard_drop_out_of_order_is_tolerated() {
        let _x = crate::tests::exclusive();
        crate::enable();
        crate::reset();
        let a = span("a");
        let b = span("b");
        drop(a); // dropped before its child
        drop(b);
        let spans = finished();
        crate::disable();
        assert_eq!(spans.len(), 2);
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        assert_eq!(b.parent, Some(a.id));
    }

    #[test]
    fn string_names_are_accepted() {
        let _x = crate::tests::exclusive();
        crate::enable();
        crate::reset();
        {
            let _s = span(format!("epoch[{}]", 7));
        }
        let spans = finished();
        crate::disable();
        assert_eq!(spans[0].name, "epoch[7]");
    }
}
