//! Zero-cost-when-disabled observability for the cuisine workspace.
//!
//! Three primitives, all process-global so instrumented crates never have
//! to thread a context through their APIs:
//!
//! * **Spans** — [`span`] opens a nested, timed region; dropping the
//!   returned guard closes it. Spans form a per-thread tree (a span's
//!   parent is the innermost span still open on the same thread), so a
//!   `table4` run yields a tree like `model[LSTM] → train → epoch[3]`.
//! * **Counters** — monotonically increasing `u64`s declared as statics
//!   at the instrumentation site ([`Counter::new`] is `const`). They
//!   self-register with the global [`MetricsRegistry`] on first use.
//! * **Gauges** — last-value / running-max `u64`s, same lifecycle.
//!
//! # The zero-cost contract
//!
//! Tracing is **off** by default. Every hot-path entry point first does a
//! single `Relaxed` atomic load ([`enabled`]) and returns immediately when
//! tracing is off: no clock reads, no allocation, no locks. Timing-heavy
//! call sites (e.g. the tensor pool's wait accounting) must gate their
//! `Instant::now()` calls on [`enabled`] themselves — the API is designed
//! so the cheap check happens before any expensive measurement.
//!
//! When tracing is **on**, span open/close takes one clock read plus one
//! short-lived lock on the finished-span list at close; counters are a
//! single relaxed `fetch_add`. That is cheap enough to leave instrumented
//! code in release builds permanently.
//!
//! # Snapshots
//!
//! [`snapshot`] freezes the current span tree and metric values into a
//! [`TraceSnapshot`], which renders to deterministic JSON via
//! [`TraceSnapshot::to_json`] (spans in start order, metrics sorted by
//! name). [`write_json`] is the one-call version used by the harness
//! binaries to emit `RUN_trace.json`.
//!
//! ```
//! static REQUESTS: trace::Counter = trace::Counter::new("doc.requests");
//!
//! trace::enable();
//! {
//!     let _span = trace::span("doc.handle");
//!     REQUESTS.incr();
//! }
//! let snap = trace::snapshot();
//! assert!(snap.counter("doc.requests").unwrap() >= 1);
//! assert!(snap.span_total_ns("doc.handle") > 0);
//! ```

#![warn(missing_docs)]

mod json;
mod metrics;
mod span;

pub use json::escape as json_escape;
pub use metrics::{Counter, Gauge, MetricKind, MetricValue, MetricsRegistry};
pub use span::{span, SpanGuard, SpanRecord};

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently collecting. A single `Relaxed` load — the
/// only cost instrumented code pays when observability is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on. Spans opened before this call are not recorded.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns collection off. Spans already open still record on drop so the
/// tree stays balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enables tracing when the `CUISINE_TRACE` environment variable is set to
/// anything but `0`/empty. Returns whether tracing ended up enabled.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("CUISINE_TRACE") {
        let v = v.trim();
        if !v.is_empty() && v != "0" {
            enable();
        }
    }
    enabled()
}

/// Clears every recorded span and resets all registered metrics to zero.
/// The enabled flag is left untouched.
pub fn reset() {
    span::reset();
    MetricsRegistry::global().reset();
}

/// A frozen view of the recorded spans and metric values.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Finished spans, in start order.
    pub spans: Vec<SpanRecord>,
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(&'static str, u64)>,
}

impl TraceSnapshot {
    /// Total recorded duration of every span named `name`, in nanoseconds.
    pub fn span_total_ns(&self, name: &str) -> u128 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Value of a counter, or `None` if it never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, or `None` if it never registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the snapshot as a JSON document: the span tree (children
    /// nested under parents), then counters and gauges as sorted objects.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.spans.len() * 128);
        out.push_str("{\n  \"trace\": \"cuisine-run\",\n  \"spans\": [");
        let roots: Vec<usize> = (0..self.spans.len())
            .filter(|&i| {
                self.spans[i]
                    .parent
                    .is_none_or(|p| !self.spans.iter().any(|s| s.id == p))
            })
            .collect();
        for (i, &r) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            self.write_span(&mut out, r, 2);
        }
        if roots.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }
        out.push_str(",\n  \"counters\": {");
        Self::write_metrics(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        Self::write_metrics(&mut out, &self.gauges);
        out.push_str("}\n}\n");
        out
    }

    fn write_metrics(out: &mut String, metrics: &[(&'static str, u64)]) {
        for (i, (name, value)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&json::escape(name));
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        if !metrics.is_empty() {
            out.push_str("\n  ");
        }
    }

    fn write_span(&self, out: &mut String, idx: usize, depth: usize) {
        let pad = "  ".repeat(depth);
        let s = &self.spans[idx];
        out.push_str(&format!(
            "{pad}{{\"name\": \"{}\", \"thread\": \"{}\", \
             \"start_us\": {}, \"dur_us\": {}",
            json::escape(&s.name),
            json::escape(&s.thread),
            s.start_ns / 1_000,
            s.dur_ns / 1_000,
        ));
        let children: Vec<usize> = (0..self.spans.len())
            .filter(|&i| self.spans[i].parent == Some(s.id))
            .collect();
        if children.is_empty() {
            out.push('}');
            return;
        }
        out.push_str(", \"children\": [");
        for (i, &c) in children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            self.write_span(out, c, depth + 1);
        }
        out.push_str(&format!("\n{pad}]}}"));
    }
}

/// Freezes the current spans and metrics into a [`TraceSnapshot`].
pub fn snapshot() -> TraceSnapshot {
    let (counters, gauges) = MetricsRegistry::global().snapshot();
    TraceSnapshot {
        spans: span::finished(),
        counters,
        gauges,
    }
}

/// Writes [`snapshot`]'s JSON to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_json(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Tests share the process-global collector; serialize them.
    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    static C_DISABLED: Counter = Counter::new("test.lib.disabled");

    #[test]
    fn disabled_collects_nothing() {
        let _x = exclusive();
        disable();
        reset();
        {
            let _s = span("ghost");
            C_DISABLED.add(5);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.counter("test.lib.disabled").unwrap_or(0), 0);
    }

    #[test]
    fn nested_spans_form_a_tree() {
        let _x = exclusive();
        enable();
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        }
        let snap = snapshot();
        disable();
        assert_eq!(snap.spans.len(), 3);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = snap.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        // parent fully covers its children
        assert!(outer.dur_ns >= inner.dur_ns);
        let json = snap.to_json();
        assert!(json.contains("\"name\": \"outer\""));
        assert!(json.contains("\"children\": ["));
    }

    #[test]
    fn snapshot_json_is_well_formed_when_empty() {
        let _x = exclusive();
        disable();
        reset();
        let json = snapshot().to_json();
        assert!(json.contains("\"spans\": []"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn span_total_and_lookup_helpers() {
        let _x = exclusive();
        enable();
        reset();
        {
            let _a = span("work");
        }
        {
            let _b = span("work");
        }
        let snap = snapshot();
        disable();
        assert_eq!(snap.spans.len(), 2);
        assert!(snap.span_total_ns("work") >= snap.spans[0].dur_ns);
        assert_eq!(snap.span_total_ns("absent"), 0);
        assert_eq!(snap.counter("no.such.counter"), None);
    }

    #[test]
    fn init_from_env_respects_zero() {
        let _x = exclusive();
        disable();
        // no env var set in tests → stays disabled
        std::env::remove_var("CUISINE_TRACE");
        assert!(!init_from_env());
        std::env::set_var("CUISINE_TRACE", "0");
        assert!(!init_from_env());
        std::env::set_var("CUISINE_TRACE", "1");
        assert!(init_from_env());
        std::env::remove_var("CUISINE_TRACE");
        disable();
    }
}
