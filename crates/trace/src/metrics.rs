//! Self-registering counters and gauges plus the global registry that
//! snapshots them.
//!
//! Instrumented crates declare metrics as statics:
//!
//! ```
//! static TASKS: trace::Counter = trace::Counter::new("pool.tasks");
//! TASKS.incr(); // no-op (one atomic load) while tracing is disabled
//! ```
//!
//! The first update while tracing is enabled registers the metric with
//! [`MetricsRegistry::global`]; after that an update is a single relaxed
//! `fetch_add`/`fetch_max` — no locks on the hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Sorted `(name, value)` pairs produced by a registry snapshot.
pub(crate) type MetricEntries = Vec<(&'static str, u64)>;

/// What kind of metric a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Last-value / running-max measurement.
    Gauge,
}

/// A registered metric handle.
#[derive(Debug, Clone, Copy)]
pub struct MetricValue {
    /// Metric name (dotted path, e.g. `tensor.pool.jobs`).
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Current value.
    pub value: u64,
}

trait Metric: Sync {
    fn describe(&self) -> MetricValue;
    fn reset(&self);
}

/// A monotonic counter. Declare as a `static`; see the module docs.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates an unregistered counter (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`. No-op while tracing is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one. No-op while tracing is disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            MetricsRegistry::global().register(self);
        }
    }
}

impl Metric for Counter {
    fn describe(&self) -> MetricValue {
        MetricValue {
            name: self.name,
            kind: MetricKind::Counter,
            value: self.get(),
        }
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: set to the latest value or ratcheted to a running max.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// Creates an unregistered gauge (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Overwrites the value. No-op while tracing is disabled.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Ratchets the value up to `v` if larger (peak tracking). No-op while
    /// tracing is disabled.
    #[inline]
    pub fn set_max(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` to the level. Unlike [`set`](Self::set), this is safe for
    /// gauges with many concurrent writers (e.g. in-flight request counts
    /// maintained from several threads): each writer contributes a delta
    /// instead of clobbering the others' view. Pair every `add` with a
    /// matching [`sub`](Self::sub). No-op while tracing is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the level, saturating at zero (an unmatched
    /// `sub` — e.g. after `trace::reset` zeroed the gauge mid-flight —
    /// must not wrap to `u64::MAX`). No-op while tracing is disabled.
    #[inline]
    pub fn sub(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            MetricsRegistry::global().register(self);
        }
    }
}

impl Metric for Gauge {
    fn describe(&self) -> MetricValue {
        MetricValue {
            name: self.name,
            kind: MetricKind::Gauge,
            value: self.get(),
        }
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The process-wide list of metrics that have been touched at least once
/// while tracing was enabled.
pub struct MetricsRegistry {
    entries: Mutex<Vec<&'static dyn Metric>>,
}

impl MetricsRegistry {
    /// The global registry.
    pub fn global() -> &'static MetricsRegistry {
        static G: OnceLock<MetricsRegistry> = OnceLock::new();
        G.get_or_init(|| MetricsRegistry {
            entries: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Vec<&'static dyn Metric>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(&self, metric: &'static dyn Metric) {
        self.lock().push(metric);
    }

    /// Every registered metric's current value.
    pub fn values(&self) -> Vec<MetricValue> {
        let mut v: Vec<MetricValue> = self.lock().iter().map(|m| m.describe()).collect();
        v.sort_by_key(|m| m.name);
        v
    }

    /// `(counters, gauges)`, each sorted by name.
    pub(crate) fn snapshot(&self) -> (MetricEntries, MetricEntries) {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for m in self.values() {
            match m.kind {
                MetricKind::Counter => counters.push((m.name, m.value)),
                MetricKind::Gauge => gauges.push((m.name, m.value)),
            }
        }
        (counters, gauges)
    }

    /// Zeroes every registered metric (they stay registered).
    pub fn reset(&self) {
        for m in self.lock().iter() {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static HITS: Counter = Counter::new("test.metrics.hits");
    static PEAK: Gauge = Gauge::new("test.metrics.peak");
    static LAST: Gauge = Gauge::new("test.metrics.last");

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let _x = crate::tests::exclusive();
        crate::enable();
        crate::reset();
        HITS.add(2);
        HITS.incr();
        PEAK.set_max(10);
        PEAK.set_max(4); // lower → ignored
        LAST.set(7);
        LAST.set(3); // overwrites
        let snap = crate::snapshot();
        crate::disable();
        assert_eq!(snap.counter("test.metrics.hits"), Some(3));
        assert_eq!(snap.gauge("test.metrics.peak"), Some(10));
        assert_eq!(snap.gauge("test.metrics.last"), Some(3));
    }

    #[test]
    fn gauge_add_sub_tracks_a_level_and_saturates() {
        let _x = crate::tests::exclusive();
        crate::enable();
        crate::reset();
        LAST.add(5);
        LAST.sub(2);
        assert_eq!(LAST.get(), 3);
        LAST.sub(10); // unmatched sub saturates instead of wrapping
        assert_eq!(LAST.get(), 0);
        crate::reset();
        crate::disable();
    }

    #[test]
    fn updates_while_disabled_are_dropped() {
        let _x = crate::tests::exclusive();
        crate::enable();
        HITS.incr(); // ensure registered
        crate::reset();
        crate::disable();
        HITS.add(100);
        PEAK.set_max(999);
        assert_eq!(HITS.get(), 0);
        assert_eq!(PEAK.get(), 0);
    }

    #[test]
    fn registry_values_are_sorted_by_name() {
        let _x = crate::tests::exclusive();
        crate::enable();
        HITS.incr();
        PEAK.set_max(1);
        LAST.set(1);
        let values = MetricsRegistry::global().values();
        crate::reset();
        crate::disable();
        let names: Vec<_> = values.iter().map(|m| m.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
