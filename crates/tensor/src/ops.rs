//! Row-wise softmax and log-softmax.
//!
//! Both are numerically stabilised by subtracting the per-row maximum before
//! exponentiation, the standard trick that keeps logits of any magnitude
//! finite.
//!
//! The public functions dispatch through the active
//! [`crate::backend::Backend`]; the `*_reference` implementations in this
//! module are the trait's default bodies and the bit-identity reference any
//! overriding backend must match (in particular, `exp`/`ln` must remain the
//! libm calls — serving pins f32 results to the training graph).

use crate::backend;
use crate::Tensor;

/// Row-wise softmax, allocating the output.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    let cols = out.cols();
    backend::current().softmax_rows_in_place(cols, out.as_mut_slice());
    out
}

/// Row-wise softmax into a caller-provided buffer.
///
/// # Panics
///
/// Panics if `out` does not match `x`'s shape.
pub fn softmax_rows_into(x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.shape(), out.shape(), "softmax output shape mismatch");
    out.as_mut_slice().copy_from_slice(x.as_slice());
    let cols = out.cols();
    backend::current().softmax_rows_in_place(cols, out.as_mut_slice());
}

/// Reference row-wise softmax over a `rows × cols` row-major buffer.
pub(crate) fn softmax_rows_reference(cols: usize, data: &mut [f32]) {
    if cols == 0 {
        return;
    }
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise log-softmax, allocating the output.
///
/// `log_softmax(x)_i = x_i - max - log(sum_j exp(x_j - max))`.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    let cols = out.cols();
    backend::current().log_softmax_rows_in_place(cols, out.as_mut_slice());
    out
}

/// Reference row-wise log-softmax over a `rows × cols` row-major buffer.
pub(crate) fn log_softmax_rows_reference(cols: usize, data: &mut [f32]) {
    if cols == 0 {
        return;
    }
    for row in data.chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v = *v - max - log_sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_rows(&Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = softmax_rows(&Tensor::from_rows(&[&[101.0, 102.0, 103.0]]));
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn softmax_handles_huge_logits() {
        let s = softmax_rows(&Tensor::from_rows(&[&[1000.0, 0.0]]));
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_rows(&[&[0.3, -1.2, 2.0, 0.0]]);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let s = softmax_rows(&Tensor::zeros(1, 4));
        for c in 0..4 {
            assert!((s.get(0, c) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_width_rows_are_a_noop() {
        let x = Tensor::zeros(3, 0);
        assert_eq!(softmax_rows(&x).shape(), (3, 0));
        assert_eq!(log_softmax_rows(&x).shape(), (3, 0));
    }
}
