//! Row-wise softmax and log-softmax.
//!
//! Both are numerically stabilised by subtracting the per-row maximum before
//! exponentiation, the standard trick that keeps logits of any magnitude
//! finite.

use crate::Tensor;

/// Row-wise softmax, allocating the output.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// Row-wise softmax into a caller-provided buffer.
///
/// # Panics
///
/// Panics if `out` does not match `x`'s shape.
pub fn softmax_rows_into(x: &Tensor, out: &mut Tensor) {
    assert_eq!(x.shape(), out.shape(), "softmax output shape mismatch");
    out.as_mut_slice().copy_from_slice(x.as_slice());
    softmax_rows_in_place(out);
}

fn softmax_rows_in_place(x: &mut Tensor) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise log-softmax, allocating the output.
///
/// `log_softmax(x)_i = x_i - max - log(sum_j exp(x_j - max))`.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v = *v - max - log_sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_rows(&Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = softmax_rows(&Tensor::from_rows(&[&[101.0, 102.0, 103.0]]));
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn softmax_handles_huge_logits() {
        let s = softmax_rows(&Tensor::from_rows(&[&[1000.0, 0.0]]));
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_rows(&[&[0.3, -1.2, 2.0, 0.0]]);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let s = softmax_rows(&Tensor::zeros(1, 4));
        for c in 0..4 {
            assert!((s.get(0, c) - 0.25).abs() < 1e-6);
        }
    }
}
