//! Hand-scheduled AVX2/AVX-512 f32 kernels behind the [`Backend`] trait.
//!
//! # How bit-identity with the scalar backend is achieved
//!
//! The scalar kernels fix, per output element, a single accumulation
//! order (see the [`crate::backend`] module docs). These kernels keep
//! that order while changing only *how many output elements advance per
//! instruction*:
//!
//! * `a_b` / `at_b` — each output element's chain runs over ascending
//!   `p`, so the kernels broadcast one `A` element and advance 8 or 16
//!   *independent* output columns at once (`acc = add(acc, mul(a, b))`,
//!   never FMA — Rust never contracts `mul`+`add`, and neither may we,
//!   since fused rounding would split from the scalar result). The
//!   scalar zero-skip (`A` elements equal to `0.0` contribute nothing)
//!   is mirrored with the same scalar compare before each broadcast.
//! * `a_bt` — the scalar [`crate::matmul::dot`] is *structure*-bound:
//!   eight partial sums collapsed by a fixed tree. The SIMD kernel keeps
//!   exactly one eight-lane accumulator chain per output element (lane
//!   `l` equals the scalar `acc[l]` after every chunk) and wins its
//!   instruction-level parallelism by keeping four output dots in flight
//!   instead of widening a single dot to 16 lanes, which would split the
//!   chains and change the bits. The horizontal reduction replays the
//!   scalar tree node for node, then the same ascending scalar tail.
//!
//! Ragged edges use masked loads/stores (`vmaskmovps` on AVX2,
//! `k`-register masks on AVX-512), which are fault-suppressing, so no
//! kernel ever reads past a row.
//!
//! Selection is per shape: outputs narrower than one vector fall back to
//! the scalar kernels (the mask overhead cannot pay), and the AVX-512
//! forms require 16-wide outputs. `tests/backend_conformance.rs`
//! differentially verifies every path against the scalar reference.

use crate::backend::{scalar_tile, Backend, MatmulAlgo, MatmulDesc, MatmulOp};

/// x86 SIMD backend: AVX2 baseline, AVX-512 forms where detected.
///
/// On non-x86_64 targets the backend still registers but reports
/// unsupported, so [`crate::backend::resolve`] routes everything to
/// scalar.
pub struct SimdBackend;

#[cfg(target_arch = "x86_64")]
fn has_avx2() -> bool {
    use std::sync::OnceLock;
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(target_arch = "x86_64")]
fn has_avx512() -> bool {
    use std::sync::OnceLock;
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
}

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn supported(&self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            has_avx2()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    fn select(&self, desc: &MatmulDesc) -> MatmulAlgo {
        #[cfg(target_arch = "x86_64")]
        {
            match desc.op() {
                // Broadcast kernels vectorise over output columns: below
                // one vector of columns the masked tail is the whole
                // kernel, so the scalar form wins.
                MatmulOp::AB => {
                    if has_avx512() && desc.n >= 16 {
                        MatmulAlgo::SimdBroadcast512
                    } else if desc.n >= 8 {
                        MatmulAlgo::SimdBroadcast256
                    } else {
                        MatmulAlgo::ScalarRegTile
                    }
                }
                MatmulOp::AtB => {
                    if has_avx512() && desc.n >= 16 {
                        MatmulAlgo::SimdBroadcast512
                    } else if desc.n >= 8 {
                        MatmulAlgo::SimdBroadcast256
                    } else {
                        MatmulAlgo::ScalarStream
                    }
                }
                // The row-dot kernel vectorises over the shared dimension.
                MatmulOp::ABt => {
                    if desc.k >= 8 {
                        MatmulAlgo::SimdRowDot256
                    } else {
                        MatmulAlgo::ScalarRowDot
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            match desc.op() {
                MatmulOp::AB => MatmulAlgo::ScalarRegTile,
                MatmulOp::AtB => MatmulAlgo::ScalarStream,
                MatmulOp::ABt => MatmulAlgo::ScalarRowDot,
            }
        }
    }

    fn select_quant(&self, _desc: &MatmulDesc, packed: bool) -> MatmulAlgo {
        // `packed` is only ever true when AVX-512 VNNI was detected at
        // quantization time (same process), so packed ⇒ the kernel runs.
        if packed {
            MatmulAlgo::QuantVnni
        } else {
            MatmulAlgo::QuantPortable
        }
    }

    fn matmul_tile(
        &self,
        desc: &MatmulDesc,
        algo: MatmulAlgo,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        match algo {
            MatmulAlgo::ScalarRegTile | MatmulAlgo::ScalarStream | MatmulAlgo::ScalarRowDot => {
                scalar_tile(desc, algo, a, b, lo, hi, rows);
            }
            #[cfg(target_arch = "x86_64")]
            // Safety: these algos are only selected after runtime feature
            // detection (avx512f / avx2 respectively), and `drive` hands
            // the kernels in-bounds row ranges of a correctly sized out.
            MatmulAlgo::SimdBroadcast512 => unsafe {
                match desc.op() {
                    MatmulOp::AB => x86::a_b_512(desc, a, b, lo, hi, rows),
                    MatmulOp::AtB => x86::at_b_512(desc, a, b, lo, hi, rows),
                    MatmulOp::ABt => unreachable!("broadcast algo is never selected for a_bt"),
                }
            },
            #[cfg(target_arch = "x86_64")]
            MatmulAlgo::SimdBroadcast256 => unsafe {
                match desc.op() {
                    MatmulOp::AB => x86::a_b_256(desc, a, b, lo, hi, rows),
                    MatmulOp::AtB => x86::at_b_256(desc, a, b, lo, hi, rows),
                    MatmulOp::ABt => unreachable!("broadcast algo is never selected for a_bt"),
                }
            },
            #[cfg(target_arch = "x86_64")]
            MatmulAlgo::SimdRowDot256 => unsafe { x86::a_bt_256(desc, a, b, lo, hi, rows) },
            other => panic!("simd backend cannot run algo {other:?}"),
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::MatmulDesc;
    use std::arch::x86_64::*;

    /// Output rows per AVX-512 register block of [`a_b_512`].
    const BLK_ROWS: usize = 4;

    /// Rows `lo..hi` of `C = A · B`, AVX-512 broadcast form.
    ///
    /// Full blocks run [`BLK_ROWS`] output rows × 64 columns (16 zmm
    /// accumulators) so each streamed `B` vector feeds four rows and the
    /// sixteen independent add chains cover the vector-add latency — a
    /// single-row form is latency-bound and loses to the autovectorised
    /// scalar tile. Row/column tails fall back to a one-row loop: 16-wide
    /// blocks, then one masked block. Every path accumulates each
    /// `C[i][j]` over ascending `p`, skipping `A[i][p] == 0.0`, with
    /// separate mul and add (no FMA), matching the scalar kernels bitwise.
    ///
    /// # Safety
    ///
    /// Requires avx512f; slices must match `desc` with `lo..hi` in range
    /// and `rows` holding exactly those output rows.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn a_b_512(
        desc: &MatmulDesc,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        let (k, n) = (desc.k, desc.n);
        let a_ptr = a.as_ptr();
        let b_ptr = b.as_ptr();
        let out = rows.as_mut_ptr();
        let mut i = lo;
        while i + BLK_ROWS <= hi {
            let a_rows = [
                a_ptr.add(i * k),
                a_ptr.add((i + 1) * k),
                a_ptr.add((i + 2) * k),
                a_ptr.add((i + 3) * k),
            ];
            // One pass over the block's A rows: when no factor is zero —
            // the common dense case — the hot loop below drops the
            // per-element skip check entirely (bit-identical, since the
            // skip would never fire) and its broadcasts fold into memory
            // operands instead of shuffle-port µops.
            let mut block_has_zero = false;
            for a_row in a_rows {
                for p in 0..k {
                    block_has_zero |= *a_row.add(p) == 0.0;
                }
            }
            let mut j = 0;
            while j + 64 <= n {
                let mut acc = [[_mm512_setzero_ps(); 4]; BLK_ROWS];
                if block_has_zero {
                    for p in 0..k {
                        let base = b_ptr.add(p * n + j);
                        let vb = [
                            _mm512_loadu_ps(base),
                            _mm512_loadu_ps(base.add(16)),
                            _mm512_loadu_ps(base.add(32)),
                            _mm512_loadu_ps(base.add(48)),
                        ];
                        for (r, row_acc) in acc.iter_mut().enumerate() {
                            let a_ip = *a_rows[r].add(p);
                            if a_ip == 0.0 {
                                continue; // embeddings & one-hots make zero rows common
                            }
                            let va = _mm512_set1_ps(a_ip);
                            for (c, lane) in row_acc.iter_mut().enumerate() {
                                *lane = _mm512_add_ps(*lane, _mm512_mul_ps(va, vb[c]));
                            }
                        }
                    }
                } else {
                    for p in 0..k {
                        let base = b_ptr.add(p * n + j);
                        if p + 2 < k {
                            // pull the B row two iterations out of L2 so the
                            // loads below hit L1
                            _mm_prefetch::<_MM_HINT_T0>(base.add(2 * n).cast());
                            _mm_prefetch::<_MM_HINT_T0>(base.add(2 * n + 32).cast());
                        }
                        let vb = [
                            _mm512_loadu_ps(base),
                            _mm512_loadu_ps(base.add(16)),
                            _mm512_loadu_ps(base.add(32)),
                            _mm512_loadu_ps(base.add(48)),
                        ];
                        for (r, row_acc) in acc.iter_mut().enumerate() {
                            let va = _mm512_set1_ps(*a_rows[r].add(p));
                            for (c, lane) in row_acc.iter_mut().enumerate() {
                                *lane = _mm512_add_ps(*lane, _mm512_mul_ps(va, vb[c]));
                            }
                        }
                    }
                }
                for (r, row_acc) in acc.iter().enumerate() {
                    let c_row = out.add((i + r - lo) * n);
                    for (c, lane) in row_acc.iter().enumerate() {
                        _mm512_storeu_ps(c_row.add(j + 16 * c), *lane);
                    }
                }
                j += 64;
            }
            if j < n {
                for (r, &a_row) in a_rows.iter().enumerate() {
                    a_b_512_row(k, n, a_row, b_ptr, out.add((i + r - lo) * n), j);
                }
            }
            i += BLK_ROWS;
        }
        while i < hi {
            a_b_512_row(k, n, a_ptr.add(i * k), b_ptr, out.add((i - lo) * n), 0);
            i += 1;
        }
    }

    /// Columns `j0..n` of one output row of `C = A · B`: 16-wide blocks,
    /// then one masked block. The tail path of [`a_b_512`]; same
    /// accumulation order.
    ///
    /// # Safety
    ///
    /// Requires avx512f; `a_row`/`c_row` must point at full rows of `A`/`C`
    /// and `b` at the full `k × n` matrix, with `j0 <= n`.
    #[target_feature(enable = "avx512f")]
    unsafe fn a_b_512_row(
        k: usize,
        n: usize,
        a_row: *const f32,
        b: *const f32,
        c_row: *mut f32,
        j0: usize,
    ) {
        let mut j = j0;
        while j < n {
            let rem = n - j;
            let mask: __mmask16 = if rem >= 16 { 0xffff } else { (1u16 << rem) - 1 };
            let mut acc = _mm512_setzero_ps();
            for p in 0..k {
                let a_ip = *a_row.add(p);
                if a_ip == 0.0 {
                    continue;
                }
                let va = _mm512_set1_ps(a_ip);
                let vb = _mm512_maskz_loadu_ps(mask, b.add(p * n + j));
                acc = _mm512_add_ps(acc, _mm512_mul_ps(va, vb));
            }
            _mm512_mask_storeu_ps(c_row.add(j), mask, acc);
            j += 16;
        }
    }

    /// Rows `lo..hi` of `C = A · B`, AVX2 broadcast form (8-wide analogue
    /// of [`a_b_512`]; masked ragged tail via `vmaskmovps`).
    ///
    /// # Safety
    ///
    /// Requires avx2; same slice contract as [`a_b_512`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn a_b_256(
        desc: &MatmulDesc,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        let (k, n) = (desc.k, desc.n);
        let a_ptr = a.as_ptr();
        let b_ptr = b.as_ptr();
        let out = rows.as_mut_ptr();
        for i in lo..hi {
            let a_row = a_ptr.add(i * k);
            let c_row = out.add((i - lo) * n);
            let mut j = 0;
            while j + 32 <= n {
                let mut acc = [_mm256_setzero_ps(); 4];
                for p in 0..k {
                    let a_ip = *a_row.add(p);
                    if a_ip == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(a_ip);
                    let base = b_ptr.add(p * n + j);
                    for (c, lane) in acc.iter_mut().enumerate() {
                        let vb = _mm256_loadu_ps(base.add(8 * c));
                        *lane = _mm256_add_ps(*lane, _mm256_mul_ps(va, vb));
                    }
                }
                for (c, lane) in acc.iter().enumerate() {
                    _mm256_storeu_ps(c_row.add(j + 8 * c), *lane);
                }
                j += 32;
            }
            while j + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for p in 0..k {
                    let a_ip = *a_row.add(p);
                    if a_ip == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(a_ip);
                    let vb = _mm256_loadu_ps(b_ptr.add(p * n + j));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                }
                _mm256_storeu_ps(c_row.add(j), acc);
                j += 8;
            }
            if j < n {
                let mask = tail_mask(n - j);
                let mut acc = _mm256_setzero_ps();
                for p in 0..k {
                    let a_ip = *a_row.add(p);
                    if a_ip == 0.0 {
                        continue;
                    }
                    let va = _mm256_set1_ps(a_ip);
                    let vb = _mm256_maskload_ps(b_ptr.add(p * n + j), mask);
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                }
                _mm256_maskstore_ps(c_row.add(j), mask, acc);
            }
        }
    }

    /// Rows `lo..hi` of `C = Aᵀ · B`, AVX-512 form.
    ///
    /// Structurally [`a_b_512`] with `A` read column-wise (`A[p · m + i]`,
    /// `A` stored `k × m`): full [`BLK_ROWS`] × 64 register blocks with the
    /// same no-zero fast path, so large products stop round-tripping
    /// output rows through memory once per `p` (which loses to the
    /// autovectorised scalar stream). Row/column tails keep the scalar
    /// kernel's `p`-outer streaming loop, vectorised. Per-element order
    /// and zero-skip match scalar everywhere.
    ///
    /// # Safety
    ///
    /// Requires avx512f; same slice contract as [`a_b_512`] (with `A`
    /// stored `k × m`).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn at_b_512(
        desc: &MatmulDesc,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        let (m, k, n) = (desc.m, desc.k, desc.n);
        rows.fill(0.0);
        let a_ptr = a.as_ptr();
        let b_ptr = b.as_ptr();
        let out = rows.as_mut_ptr();
        let mut i = lo;
        while i + BLK_ROWS <= hi {
            let mut block_has_zero = false;
            for r in 0..BLK_ROWS {
                for p in 0..k {
                    block_has_zero |= *a_ptr.add(p * m + i + r) == 0.0;
                }
            }
            let mut j = 0;
            while j + 64 <= n {
                let mut acc = [[_mm512_setzero_ps(); 4]; BLK_ROWS];
                if block_has_zero {
                    for p in 0..k {
                        let base = b_ptr.add(p * n + j);
                        let vb = [
                            _mm512_loadu_ps(base),
                            _mm512_loadu_ps(base.add(16)),
                            _mm512_loadu_ps(base.add(32)),
                            _mm512_loadu_ps(base.add(48)),
                        ];
                        let a_col = a_ptr.add(p * m + i);
                        for (r, row_acc) in acc.iter_mut().enumerate() {
                            let a_pi = *a_col.add(r);
                            if a_pi == 0.0 {
                                continue;
                            }
                            let va = _mm512_set1_ps(a_pi);
                            for (c, lane) in row_acc.iter_mut().enumerate() {
                                *lane = _mm512_add_ps(*lane, _mm512_mul_ps(va, vb[c]));
                            }
                        }
                    }
                } else {
                    for p in 0..k {
                        let base = b_ptr.add(p * n + j);
                        if p + 2 < k {
                            _mm_prefetch::<_MM_HINT_T0>(base.add(2 * n).cast());
                            _mm_prefetch::<_MM_HINT_T0>(base.add(2 * n + 32).cast());
                        }
                        let vb = [
                            _mm512_loadu_ps(base),
                            _mm512_loadu_ps(base.add(16)),
                            _mm512_loadu_ps(base.add(32)),
                            _mm512_loadu_ps(base.add(48)),
                        ];
                        let a_col = a_ptr.add(p * m + i);
                        for (r, row_acc) in acc.iter_mut().enumerate() {
                            let va = _mm512_set1_ps(*a_col.add(r));
                            for (c, lane) in row_acc.iter_mut().enumerate() {
                                *lane = _mm512_add_ps(*lane, _mm512_mul_ps(va, vb[c]));
                            }
                        }
                    }
                }
                for (r, row_acc) in acc.iter().enumerate() {
                    let c_row = out.add((i + r - lo) * n);
                    for (c, lane) in row_acc.iter().enumerate() {
                        _mm512_storeu_ps(c_row.add(j + 16 * c), *lane);
                    }
                }
                j += 64;
            }
            if j < n {
                at_b_512_stream(m, k, n, a_ptr, b_ptr, out, lo, i, i + BLK_ROWS, j);
            }
            i += BLK_ROWS;
        }
        if i < hi {
            at_b_512_stream(m, k, n, a_ptr, b_ptr, out, lo, i, hi, 0);
        }
    }

    /// Columns `j0..n` of output rows `row_start..row_end` of `C = Aᵀ · B`:
    /// the scalar kernel's `p`-outer streaming loop, vectorised 16-wide
    /// with a masked tail. The tail path of [`at_b_512`]; requires the
    /// target rows to have been zero-filled.
    ///
    /// # Safety
    ///
    /// Requires avx512f; pointer/range contract as in [`at_b_512`], with
    /// `lo <= row_start <= row_end <= hi` and `j0 <= n`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)] // flat coordinate bundle on the hot path
    unsafe fn at_b_512_stream(
        m: usize,
        k: usize,
        n: usize,
        a_ptr: *const f32,
        b_ptr: *const f32,
        out: *mut f32,
        lo: usize,
        row_start: usize,
        row_end: usize,
        j0: usize,
    ) {
        for p in 0..k {
            let b_row = b_ptr.add(p * n);
            for i in row_start..row_end {
                let a_pi = *a_ptr.add(p * m + i);
                if a_pi == 0.0 {
                    continue;
                }
                let va = _mm512_set1_ps(a_pi);
                let c_row = out.add((i - lo) * n);
                let mut j = j0;
                while j + 16 <= n {
                    let vb = _mm512_loadu_ps(b_row.add(j));
                    let vc = _mm512_loadu_ps(c_row.add(j));
                    _mm512_storeu_ps(c_row.add(j), _mm512_add_ps(vc, _mm512_mul_ps(va, vb)));
                    j += 16;
                }
                if j < n {
                    let mask: __mmask16 = (1u16 << (n - j)) - 1;
                    let vb = _mm512_maskz_loadu_ps(mask, b_row.add(j));
                    let vc = _mm512_maskz_loadu_ps(mask, c_row.add(j));
                    _mm512_mask_storeu_ps(
                        c_row.add(j),
                        mask,
                        _mm512_add_ps(vc, _mm512_mul_ps(va, vb)),
                    );
                }
            }
        }
    }

    /// Rows `lo..hi` of `C = Aᵀ · B`, AVX2 analogue of [`at_b_512`].
    ///
    /// # Safety
    ///
    /// Requires avx2; same slice contract as [`at_b_512`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn at_b_256(
        desc: &MatmulDesc,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        let (m, k, n) = (desc.m, desc.k, desc.n);
        rows.fill(0.0);
        let a_ptr = a.as_ptr();
        let b_ptr = b.as_ptr();
        let out = rows.as_mut_ptr();
        for p in 0..k {
            let b_row = b_ptr.add(p * n);
            for i in lo..hi {
                let a_pi = *a_ptr.add(p * m + i);
                if a_pi == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(a_pi);
                let c_row = out.add((i - lo) * n);
                let mut j = 0;
                while j + 8 <= n {
                    let vb = _mm256_loadu_ps(b_row.add(j));
                    let vc = _mm256_loadu_ps(c_row.add(j));
                    _mm256_storeu_ps(c_row.add(j), _mm256_add_ps(vc, _mm256_mul_ps(va, vb)));
                    j += 8;
                }
                if j < n {
                    let mask = tail_mask(n - j);
                    let vb = _mm256_maskload_ps(b_row.add(j), mask);
                    let vc = _mm256_maskload_ps(c_row.add(j), mask);
                    _mm256_maskstore_ps(
                        c_row.add(j),
                        mask,
                        _mm256_add_ps(vc, _mm256_mul_ps(va, vb)),
                    );
                }
            }
        }
    }

    /// Rows `lo..hi` of `C = A · Bᵀ`: one eight-lane accumulator chain per
    /// output element (lane `l` equals the scalar `dot`'s `acc[l]` after
    /// every chunk), four output dots in flight for ILP, the scalar
    /// reduction tree replayed by [`reduce8_tree`], and the same ascending
    /// scalar tail.
    ///
    /// # Safety
    ///
    /// Requires avx2; slices must match `desc` (with `B` stored `n × k`)
    /// and `rows` must hold exactly rows `lo..hi`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn a_bt_256(
        desc: &MatmulDesc,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        let (k, n) = (desc.k, desc.n);
        let a_ptr = a.as_ptr();
        let b_ptr = b.as_ptr();
        let out = rows.as_mut_ptr();
        let chunks = k / 8;
        for i in lo..hi {
            let a_row = a_ptr.add(i * k);
            let c_row = out.add((i - lo) * n);
            let mut j = 0;
            while j + 4 <= n {
                let b_rows = [
                    b_ptr.add(j * k),
                    b_ptr.add((j + 1) * k),
                    b_ptr.add((j + 2) * k),
                    b_ptr.add((j + 3) * k),
                ];
                let mut acc = [_mm256_setzero_ps(); 4];
                for c in 0..chunks {
                    let va = _mm256_loadu_ps(a_row.add(8 * c));
                    for (l, lane) in acc.iter_mut().enumerate() {
                        let vb = _mm256_loadu_ps(b_rows[l].add(8 * c));
                        *lane = _mm256_add_ps(*lane, _mm256_mul_ps(va, vb));
                    }
                }
                for (l, lane) in acc.iter().enumerate() {
                    let mut tail = 0.0f32;
                    for t in chunks * 8..k {
                        tail += *a_row.add(t) * *b_rows[l].add(t);
                    }
                    *c_row.add(j + l) = reduce8_tree(*lane) + tail;
                }
                j += 4;
            }
            while j < n {
                let b_row = b_ptr.add(j * k);
                let mut acc = _mm256_setzero_ps();
                for c in 0..chunks {
                    let va = _mm256_loadu_ps(a_row.add(8 * c));
                    let vb = _mm256_loadu_ps(b_row.add(8 * c));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                }
                let mut tail = 0.0f32;
                for t in chunks * 8..k {
                    tail += *a_row.add(t) * *b_row.add(t);
                }
                *c_row.add(j) = reduce8_tree(acc) + tail;
                j += 1;
            }
        }
    }

    /// Collapses eight accumulator lanes through the exact tree of the
    /// scalar [`crate::matmul::dot`]:
    /// `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`, node for node, operand
    /// order preserved.
    ///
    /// # Safety
    ///
    /// Requires avx2 (for the 128-bit shuffles; callers already have it).
    #[target_feature(enable = "avx2")]
    unsafe fn reduce8_tree(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        // s = [l0+l4, l1+l5, l2+l6, l3+l7]
        let s = _mm_add_ps(lo, hi);
        // pairs[0] = s0+s1, pairs[2] = s2+s3 (0xB1 swaps within pairs)
        let pairs = _mm_add_ps(s, _mm_shuffle_ps::<0xB1>(s, s));
        let r = _mm_add_ss(pairs, _mm_movehl_ps(pairs, pairs));
        _mm_cvtss_f32(r)
    }

    /// AVX2 ragged-tail mask: lanes `< rem` enabled (high bit set).
    ///
    /// # Safety
    ///
    /// Requires avx2. `rem` must be `< 8`.
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        debug_assert!(rem < 8);
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        _mm256_cmpgt_epi32(_mm256_set1_epi32(rem as i32), idx)
    }
}
