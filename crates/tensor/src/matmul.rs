//! Matrix multiplication front-ends and the portable scalar kernels.
//!
//! The transformer and LSTM forward/backward passes spend almost all their
//! time here, so three dedicated products are provided:
//!
//! * [`matmul`] — `C = A · B`
//! * [`matmul_at_b`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (input gradients, attention scores)
//!
//! The transposed variants read the operands in their stored layout instead
//! of materialising a transpose, and every kernel has an `*_into` form that
//! reuses a caller-provided buffer, which keeps the backward pass
//! allocation-free apart from the output.
//!
//! Each public function validates shapes, builds a
//! [`MatmulDesc`](crate::backend::MatmulDesc), and hands off to
//! [`crate::backend`], which selects the device backend (scalar or SIMD,
//! per `TENSOR_BACKEND`) and a per-shape algorithm, then row-tiles the
//! output over the persistent [`crate::pool`]. The scalar tile kernels
//! live in this module; they are both the portable fallback and the
//! reference every other backend must match bit for bit.
//!
//! # Parallelism and determinism
//!
//! Large products are split into contiguous *row tiles* of the output and
//! run on the pool; small ones (fewer than
//! [`PAR_THRESHOLD`](crate::backend::PAR_THRESHOLD) multiply-adds) stay on
//! the calling thread. Each output element is accumulated in an order
//! fixed by the problem shape alone — ascending over the shared dimension,
//! with `dot`'s fixed eight-lane reduction tree — and tiles never share
//! output elements, so **results are bit-identical for every thread count,
//! tile split, and backend**. The `*_with_threads` variants exist so tests
//! and benches can pin the thread count explicitly.

use crate::backend::{self, Exec, MatmulDesc};
use crate::Tensor;

/// `C = A · B`, allocating the output.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    matmul_exec(a, b, &mut out, Exec::Auto);
    out
}

/// `C = A · B` into a caller-provided output buffer (overwritten).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    matmul_exec(a, b, out, Exec::Auto);
}

/// [`matmul`] pinned to exactly `threads` threads (for tests and benches).
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    matmul_exec(a, b, &mut out, Exec::Threads(threads));
    out
}

fn matmul_exec(a: &Tensor, b: &Tensor, out: &mut Tensor, exec: Exec) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    assert_eq!(out.shape(), (m, n), "matmul output shape mismatch");
    let desc = MatmulDesc::a_b(m, k, n);
    backend::execute(&desc, a.as_slice(), b.as_slice(), out, exec);
}

/// `C = Aᵀ · B`, reading `A` in its stored layout.
///
/// Shapes: `A: k × m`, `B: k × n` → `C: m × n`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), b.cols());
    matmul_at_b_exec(a, b, &mut out, Exec::Auto);
    out
}

/// `C = Aᵀ · B` into a caller-provided output buffer (overwritten).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_at_b_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    matmul_at_b_exec(a, b, out, Exec::Auto);
}

/// [`matmul_at_b`] pinned to exactly `threads` threads.
pub fn matmul_at_b_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), b.cols());
    matmul_at_b_exec(a, b, &mut out, Exec::Threads(threads));
    out
}

fn matmul_at_b_exec(a: &Tensor, b: &Tensor, out: &mut Tensor, exec: Exec) {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_at_b shared dimension mismatch: {k} vs {k2}");
    assert_eq!(out.shape(), (m, n), "matmul_at_b output shape mismatch");
    let desc = MatmulDesc::at_b(m, k, n);
    backend::execute(&desc, a.as_slice(), b.as_slice(), out, exec);
}

/// `C = A · Bᵀ`, reading `B` in its stored layout.
///
/// Shapes: `A: m × k`, `B: n × k` → `C: m × n`. Each output element is a dot
/// product of two contiguous rows, the ideal memory pattern.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.rows());
    matmul_a_bt_exec(a, b, &mut out, Exec::Auto);
    out
}

/// `C = A · Bᵀ` into a caller-provided output buffer (overwritten).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_a_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    matmul_a_bt_exec(a, b, out, Exec::Auto);
}

/// [`matmul_a_bt`] pinned to exactly `threads` threads.
pub fn matmul_a_bt_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.rows());
    matmul_a_bt_exec(a, b, &mut out, Exec::Threads(threads));
    out
}

fn matmul_a_bt_exec(a: &Tensor, b: &Tensor, out: &mut Tensor, exec: Exec) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_a_bt shared dimension mismatch: {k} vs {k2}");
    assert_eq!(out.shape(), (m, n), "matmul_a_bt output shape mismatch");
    let desc = MatmulDesc::a_bt(m, k, n);
    backend::execute(&desc, a.as_slice(), b.as_slice(), out, exec);
}

/// Output rows per register tile of [`a_b_tile`].
const REG_ROWS: usize = 4;
/// Output columns per register tile of [`a_b_tile`].
const REG_COLS: usize = 32;

/// Scalar `a_b` tile kernel: rows `lo..hi` of `C = A · B`.
///
/// Full 4-row blocks go through the register tile; row tails (and every
/// single-row product) keep the streaming row-at-a-time loop. Both
/// accumulate each `C[i][j]` over ascending `p` with the same per-row
/// zero-skip, so the result is bitwise identical for every block size and
/// tile split.
pub(crate) fn a_b_tile(
    desc: &MatmulDesc,
    a_data: &[f32],
    b_data: &[f32],
    lo: usize,
    hi: usize,
    rows: &mut [f32],
) {
    let (k, n) = (desc.k, desc.n);
    let mut i = lo;
    while i + REG_ROWS <= hi {
        let mut j = 0;
        while j + REG_COLS <= n {
            reg_tile(a_data, b_data, k, n, i, j, lo, rows);
            j += REG_COLS;
        }
        if j < n {
            row_panel(a_data, b_data, k, n, i, i + REG_ROWS, j, lo, rows);
        }
        i += REG_ROWS;
    }
    if i < hi {
        row_panel(a_data, b_data, k, n, i, hi, 0, lo, rows);
    }
}

/// One `REG_ROWS × REG_COLS` output tile of `C = A · B`, accumulated
/// entirely in registers so each streamed row of `B` feeds four output
/// rows. Accumulation order per element (ascending `p`, zero rows of `A`
/// skipped) matches [`row_panel`] exactly.
#[inline]
#[allow(clippy::too_many_arguments)] // flat coordinate bundle on the hot path
fn reg_tile(
    a_data: &[f32],
    b_data: &[f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
    lo: usize,
    rows: &mut [f32],
) {
    let mut acc = [[0.0f32; REG_COLS]; REG_ROWS];
    for p in 0..k {
        let b_blk = &b_data[p * n + j..p * n + j + REG_COLS];
        for r in 0..REG_ROWS {
            let a_ip = a_data[(i + r) * k + p];
            if a_ip == 0.0 {
                continue; // embeddings & one-hots make zero rows common
            }
            for (c, &bv) in acc[r].iter_mut().zip(b_blk) {
                *c += a_ip * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let at = (i + r - lo) * n + j;
        rows[at..at + REG_COLS].copy_from_slice(acc_row);
    }
}

/// Rows `i0..i1`, columns `j..n` of `C = A · B` via the streaming
/// row-at-a-time loop (the i-k-j order that keeps the inner loop over
/// contiguous rows of `B` and `C`).
#[inline]
#[allow(clippy::too_many_arguments)] // flat coordinate bundle on the hot path
fn row_panel(
    a_data: &[f32],
    b_data: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    i1: usize,
    j: usize,
    lo: usize,
    rows: &mut [f32],
) {
    for i in i0..i1 {
        let a_row = &a_data[i * k..(i + 1) * k];
        let c_row = &mut rows[(i - lo) * n + j..(i - lo) * n + n];
        c_row.fill(0.0);
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // embeddings & one-hots make zero rows common
            }
            let b_tail = &b_data[p * n + j..(p + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_tail) {
                *c += a_ip * bv;
            }
        }
    }
}

/// Scalar `at_b` tile kernel: rows `lo..hi` of `C = Aᵀ · B`.
///
/// `C[i][j] = Σ_p A[p][i] · B[p][j]`; iterate `p` outermost so both reads
/// stream forward through memory. Restricting `i` to the tile's row range
/// keeps each element's accumulation order (ascending `p`) unchanged.
pub(crate) fn at_b_tile(
    desc: &MatmulDesc,
    a_data: &[f32],
    b_data: &[f32],
    lo: usize,
    hi: usize,
    rows: &mut [f32],
) {
    let (m, k, n) = (desc.m, desc.k, desc.n);
    rows.fill(0.0);
    for p in 0..k {
        let a_row = &a_data[p * m + lo..p * m + hi];
        let b_row = &b_data[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut rows[i * n..(i + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += a_pi * bv;
            }
        }
    }
}

/// Scalar `a_bt` tile kernel: rows `lo..hi` of `C = A · Bᵀ`, one [`dot`]
/// per output element.
pub(crate) fn a_bt_tile(
    desc: &MatmulDesc,
    a_data: &[f32],
    b_data: &[f32],
    lo: usize,
    hi: usize,
    rows: &mut [f32],
) {
    let (k, n) = (desc.k, desc.n);
    for i in lo..hi {
        let a_row = &a_data[i * k..(i + 1) * k];
        let c_row = &mut rows[(i - lo) * n..(i - lo + 1) * n];
        for (j, c) in c_row.iter_mut().enumerate() {
            *c = dot(a_row, &b_data[j * k..(j + 1) * k]);
        }
    }
}

/// Dot product of two equal-length slices, unrolled eight lanes wide.
///
/// The eight partial sums collapse through a fixed reduction tree, so the
/// result depends only on the inputs — not on tiling or thread count —
/// while giving LLVM straight-line code it can keep in vector registers.
/// The SIMD backend's row-dot kernel reproduces this exact shape: one
/// eight-lane accumulator chain per output, the same tree, the same
/// ascending scalar tail.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    let mut acc = [0.0f32; 8];
    for c in 0..chunks {
        let ab = &a[c * 8..c * 8 + 8];
        let bb = &b[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += ab[l] * bb[l];
        }
    }
    let mut tail = 0.0;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PAR_THRESHOLD;
    use crate::Initializer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a23() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn b32() -> Tensor {
        Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn matmul_known_result() {
        let c = matmul(&a23(), &b32());
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = a23();
        let c = matmul(&a, &Tensor::eye(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let mut out = Tensor::full(2, 2, 99.0);
        matmul_into(&a23(), &b32(), &mut out);
        assert_eq!(out.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = a23(); // 2x3
        let b = Tensor::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]); // 2x2
        let expected = matmul(&a.transpose(), &b);
        let got = matmul_at_b(&a, &b);
        assert_eq!(got, expected);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = a23(); // 2x3
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.0, -1.0]]); // 2x3
        let expected = matmul(&a, &b.transpose());
        let got = matmul_a_bt(&a, &b);
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_shapes_panic() {
        let _ = matmul(&a23(), &a23());
    }

    #[test]
    fn matmul_with_zero_rows_skips_work() {
        let a = Tensor::zeros(3, 4);
        let b = Tensor::ones(4, 2);
        let c = matmul(&a, &b);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transposed_into_variants_reuse_buffers() {
        let a = a23();
        let b = Tensor::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]);
        let mut out = Tensor::full(3, 2, -7.0);
        matmul_at_b_into(&a, &b, &mut out);
        assert_eq!(out, matmul_at_b(&a, &b));

        let bt = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.0, -1.0]]);
        let mut out = Tensor::full(2, 2, 42.0);
        matmul_a_bt_into(&a, &bt, &mut out);
        assert_eq!(out, matmul_a_bt(&a, &bt));
    }

    /// Every kernel, pinned to 1 / 2 / 8 threads, must reproduce the
    /// sequential result *bitwise* — the determinism contract.
    #[test]
    fn thread_count_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(42);
        for (m, k, n) in [(1, 1, 1), (5, 3, 4), (17, 9, 13), (8, 1, 8)] {
            let a = Initializer::Uniform(1.0).init(m, k, &mut rng);
            let b = Initializer::Uniform(1.0).init(k, n, &mut rng);
            let at = Initializer::Uniform(1.0).init(k, m, &mut rng);
            let bt = Initializer::Uniform(1.0).init(n, k, &mut rng);
            for threads in [1, 2, 8] {
                assert_eq!(matmul_with_threads(&a, &b, threads), matmul(&a, &b));
                assert_eq!(
                    matmul_at_b_with_threads(&at, &b, threads),
                    matmul_at_b(&at, &b)
                );
                assert_eq!(
                    matmul_a_bt_with_threads(&a, &bt, threads),
                    matmul_a_bt(&a, &bt)
                );
            }
        }
    }

    /// Above `PAR_THRESHOLD` the auto path may go through the pool; it
    /// must still match the single-thread result exactly.
    #[test]
    fn auto_path_above_threshold_matches_single_thread() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (48, 31, 47); // 69 936 mul-adds ≥ PAR_THRESHOLD
        assert!(m * k * n >= PAR_THRESHOLD);
        let a = Initializer::Uniform(1.0).init(m, k, &mut rng);
        let b = Initializer::Uniform(1.0).init(k, n, &mut rng);
        assert_eq!(matmul(&a, &b), matmul_with_threads(&a, &b, 1));
        let at = Initializer::Uniform(1.0).init(k, m, &mut rng);
        assert_eq!(matmul_at_b(&at, &b), matmul_at_b_with_threads(&at, &b, 1));
        let bt = Initializer::Uniform(1.0).init(n, k, &mut rng);
        assert_eq!(matmul_a_bt(&a, &bt), matmul_a_bt_with_threads(&a, &bt, 1));
    }

    #[test]
    fn dot_handles_all_lengths() {
        // lengths around the 8-lane unroll boundary
        for len in 0..=19 {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 0.5).collect();
            let b: Vec<f32> = (0..len).map(|i| 1.0 - i as f32).collect();
            let expected: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum();
            let got = dot(&a, &b);
            assert!(
                (f64::from(got) - expected).abs() < 1e-3,
                "len={len}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_row_output_is_handled() {
        let a = Tensor::zeros(0, 3);
        let b = Tensor::zeros(3, 2);
        assert_eq!(matmul(&a, &b).shape(), (0, 2));
        assert_eq!(matmul_with_threads(&a, &b, 4).shape(), (0, 2));
        let at = Tensor::zeros(3, 0);
        assert_eq!(matmul_at_b(&at, &b).shape(), (0, 2));
    }
}
