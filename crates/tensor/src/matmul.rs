//! Matrix multiplication kernels.
//!
//! The transformer and LSTM forward/backward passes spend almost all their
//! time here, so three dedicated kernels are provided:
//!
//! * [`matmul`] — `C = A · B`
//! * [`matmul_at_b`] — `C = Aᵀ · B` (weight gradients)
//! * [`matmul_a_bt`] — `C = A · Bᵀ` (input gradients, attention scores)
//!
//! The transposed variants read the operands in their stored layout instead
//! of materialising a transpose, which keeps the backward pass allocation-free
//! apart from the output.

use crate::Tensor;

/// `C = A · B`, allocating the output.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    out
}

/// `C = A · B` into a caller-provided output buffer (overwritten).
///
/// Uses the classic i-k-j loop order so the inner loop runs over contiguous
/// rows of `B` and `C`, which lets LLVM vectorise it.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    assert_eq!(out.shape(), (m, n), "matmul output shape mismatch");

    out.fill_zero();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        let c_row = &mut out_data[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // embeddings & one-hots make zero rows common
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += a_ip * bv;
            }
        }
    }
}

/// `C = Aᵀ · B`, reading `A` in its stored layout.
///
/// Shapes: `A: k × m`, `B: k × n` → `C: m × n`.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul_at_b shared dimension mismatch: {k} vs {k2}");
    let mut out = Tensor::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    // C[i][j] = sum_p A[p][i] * B[p][j]; iterate p outermost so both reads
    // stream forward through memory.
    for p in 0..k {
        let a_row = &a_data[p * m..(p + 1) * m];
        let b_row = &b_data[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut out_data[i * n..(i + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += a_pi * bv;
            }
        }
    }
    out
}

/// `C = A · Bᵀ`, reading `B` in its stored layout.
///
/// Shapes: `A: m × k`, `B: n × k` → `C: m × n`. Each output element is a dot
/// product of two contiguous rows, the ideal memory pattern.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_a_bt shared dimension mismatch: {k} vs {k2}");
    let mut out = Tensor::zeros(m, n);
    let out_data = out.as_mut_slice();
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = &mut out_data[i * n..(i + 1) * n];
        for (j, c) in c_row.iter_mut().enumerate() {
            *c = dot(a_row, b.row(j));
        }
    }
    out
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Tensor {
        Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn b32() -> Tensor {
        Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn matmul_known_result() {
        let c = matmul(&a23(), &b32());
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = a23();
        let c = matmul(&a, &Tensor::eye(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let mut out = Tensor::full(2, 2, 99.0);
        matmul_into(&a23(), &b32(), &mut out);
        assert_eq!(out.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = a23(); // 2x3
        let b = Tensor::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]); // 2x2
        let expected = matmul(&a.transpose(), &b);
        let got = matmul_at_b(&a, &b);
        assert_eq!(got, expected);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = a23(); // 2x3
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.5, 1.0, -1.0]]); // 2x3
        let expected = matmul(&a, &b.transpose());
        let got = matmul_a_bt(&a, &b);
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_shapes_panic() {
        let _ = matmul(&a23(), &a23());
    }

    #[test]
    fn matmul_with_zero_rows_skips_work() {
        let a = Tensor::zeros(3, 4);
        let b = Tensor::ones(4, 2);
        let c = matmul(&a, &b);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
