//! Property-based tests over tensor algebra invariants.

use proptest::prelude::*;

use crate::{
    matmul, matmul_a_bt, matmul_a_bt_with_threads, matmul_at_b, matmul_at_b_with_threads,
    matmul_with_threads, softmax_rows, Tensor,
};

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..8
}

/// Wider than `small_dim` and including awkward tile splits (prime sizes,
/// sizes smaller than the thread count).
fn tiled_dim() -> impl Strategy<Value = usize> {
    1usize..20
}

fn tensor_of(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn transpose_involution((r, c) in (small_dim(), small_dim()), seed in 0u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let t = crate::Initializer::Uniform(5.0).init(r, c, &mut rng);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_identity_right((r, c) in (small_dim(), small_dim())) {
        let t = Tensor::full(r, c, 1.5);
        prop_assert_eq!(matmul(&t, &Tensor::eye(c)), t);
    }

    #[test]
    fn matmul_transposed_variants_agree(
        m in small_dim(), k in small_dim(), n in small_dim(), seed in 0u64..1000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = crate::Initializer::Uniform(2.0).init(m, k, &mut rng);
        let b = crate::Initializer::Uniform(2.0).init(k, n, &mut rng);
        let c = matmul(&a, &b);
        let via_at = matmul_at_b(&a.transpose(), &b);
        let via_bt = matmul_a_bt(&a, &b.transpose());
        prop_assert!(c.max_abs_diff(&via_at).unwrap() < 1e-4);
        prop_assert!(c.max_abs_diff(&via_bt).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in small_dim(), k in small_dim(), n in small_dim(), seed in 0u64..500,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = crate::Initializer::Uniform(2.0).init(m, k, &mut rng);
        let b1 = crate::Initializer::Uniform(2.0).init(k, n, &mut rng);
        let b2 = crate::Initializer::Uniform(2.0).init(k, n, &mut rng);
        let lhs = matmul(&a, &(&b1 + &b2));
        let rhs = &matmul(&a, &b1) + &matmul(&a, &b2);
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probability_distributions(t in small_dim().prop_flat_map(|r| {
        small_dim().prop_flat_map(move |c| tensor_of(r, c))
    })) {
        let s = softmax_rows(&t);
        for row in 0..s.rows() {
            let sum: f32 = s.row(row).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(row).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sum_rows_plus_sum_cols_consistent(t in small_dim().prop_flat_map(|r| {
        small_dim().prop_flat_map(move |c| tensor_of(r, c))
    })) {
        let total = t.sum();
        prop_assert!((t.sum_rows().sum() - total).abs() < 1e-3);
        prop_assert!((t.sum_cols().sum() - total).abs() < 1e-3);
    }

    /// The determinism contract: every kernel, for every thread count,
    /// reproduces the sequential result *bit for bit* — including m/n/k of
    /// one and row counts that do not divide evenly into tiles.
    #[test]
    fn parallel_kernels_match_scalar_bitwise(
        m in tiled_dim(), k in tiled_dim(), n in tiled_dim(), seed in 0u64..1000,
    ) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = crate::Initializer::Uniform(3.0).init(m, k, &mut rng);
        let b = crate::Initializer::Uniform(3.0).init(k, n, &mut rng);
        let at = crate::Initializer::Uniform(3.0).init(k, m, &mut rng);
        let bt = crate::Initializer::Uniform(3.0).init(n, k, &mut rng);
        let c_ab = matmul_with_threads(&a, &b, 1);
        let c_atb = matmul_at_b_with_threads(&at, &b, 1);
        let c_abt = matmul_a_bt_with_threads(&a, &bt, 1);
        // the auto path (possibly pooled) must agree with one thread...
        prop_assert_eq!(&matmul(&a, &b), &c_ab);
        prop_assert_eq!(&matmul_at_b(&at, &b), &c_atb);
        prop_assert_eq!(&matmul_a_bt(&a, &bt), &c_abt);
        // ...and so must every explicit thread count.
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&matmul_with_threads(&a, &b, threads), &c_ab);
            prop_assert_eq!(&matmul_at_b_with_threads(&at, &b, threads), &c_atb);
            prop_assert_eq!(&matmul_a_bt_with_threads(&a, &bt, threads), &c_abt);
        }
    }

    /// Zero-row (and zero-col) operands are legal and produce empty or
    /// zero outputs on every execution path.
    #[test]
    fn parallel_kernels_handle_degenerate_shapes(
        k in tiled_dim(), n in tiled_dim(), threads in 1usize..9,
    ) {
        let a = Tensor::zeros(0, k);
        let b = Tensor::zeros(k, n);
        prop_assert_eq!(matmul_with_threads(&a, &b, threads).shape(), (0, n));
        let at = Tensor::zeros(k, 0);
        prop_assert_eq!(matmul_at_b_with_threads(&at, &b, threads).shape(), (0, n));
        let bt = Tensor::zeros(0, k);
        prop_assert_eq!(matmul_a_bt_with_threads(&a, &bt, threads).shape(), (0, 0));
    }
}
