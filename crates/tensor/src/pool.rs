//! A small persistent worker pool driving the tiled matmul kernels.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** A job is a set of `tiles` indices; each tile owns a
//!    fixed slice of the output that depends only on the problem shape,
//!    never on which thread runs it. Threads *claim* tiles dynamically for
//!    load balance, but since tile → output mapping is static, results are
//!    bit-identical for any thread count (including zero workers).
//! 2. **No per-call thread spawns.** Workers are started once, on first
//!    use, and park on a condvar between jobs. `TENSOR_THREADS` overrides
//!    the detected parallelism (a value of `1` disables the pool).
//! 3. **Graceful nesting.** If a job is already in flight (e.g. a trainer
//!    shard thread and the main thread both hit a big matmul), the second
//!    submitter fails `try_lock` on the submit mutex and simply runs its
//!    tiles inline. No deadlock, no queueing.
//!
//! [`run_scoped`] is the pool-free twin used by tests and benches: it
//! spawns exactly `threads - 1` scoped threads with a fixed stride
//! assignment, so "2 threads" means two threads even on a loaded machine.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use trace::{Counter, Gauge};

/// Jobs dispatched to the worker pool (parallel path taken).
static POOL_JOBS: Counter = Counter::new("tensor.pool.jobs");
/// Tiles executed across all jobs, inline fallbacks included.
static POOL_TILES: Counter = Counter::new("tensor.pool.tiles");
/// Jobs that ran inline: no workers, a single tile, or a busy pool
/// (nested submission).
static POOL_INLINE: Counter = Counter::new("tensor.pool.inline_fallbacks");
/// Nanoseconds the submitting thread spent blocked on `done_cv` waiting
/// for workers to drain the last tiles of a job.
static POOL_SUBMIT_WAIT_NS: Counter = Counter::new("tensor.pool.submit_wait_ns");
/// Nanoseconds pool workers spent parked between jobs.
static POOL_WORKER_IDLE_NS: Counter = Counter::new("tensor.pool.worker_idle_ns");
/// Largest single job seen, in tiles.
static POOL_MAX_JOB_TILES: Gauge = Gauge::new("tensor.pool.max_job_tiles");
/// Jobs run on ad-hoc scoped threads via [`run_scoped`] (explicit thread
/// counts from tests/benches) rather than the persistent pool.
static POOL_SCOPED_JOBS: Counter = Counter::new("tensor.pool.scoped_jobs");

/// Number of threads the tensor kernels may use: the `TENSOR_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism. Resolved once and cached.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("TENSOR_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n.min(256);
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Records a tile batch that ran serially on the calling thread without
/// consulting the pool (small shapes, or a single-core machine), so the
/// trace still shows how much kernel work stayed inline.
pub fn count_inline(tiles: usize) {
    POOL_INLINE.incr();
    POOL_TILES.add(tiles as u64);
}

/// The process-wide pool, sized to `num_threads() - 1` workers (the
/// submitting thread is the final participant).
pub fn global() -> &'static Pool {
    static G: OnceLock<Pool> = OnceLock::new();
    G.get_or_init(|| Pool::new(num_threads().saturating_sub(1)))
}

type Task = dyn Fn(usize) + Sync;

struct State {
    /// Job counter; lets parked workers tell a new job from a spurious
    /// wakeup, and stops a worker that raced past the end of an old job
    /// from touching the next job's state.
    epoch: u64,
    /// Current job. The `'static` is safe because the submitter blocks
    /// until every tile is accounted for before this is cleared — the
    /// reference cannot outlive the borrow it was transmuted from.
    task: Option<&'static Task>,
    tiles: usize,
    next: usize,
    done: usize,
    /// First panic message raised by a tile of the current job, if any.
    /// Workers survive the panic; the submitter re-raises it after the
    /// job drains so the failure surfaces on the calling thread.
    panicked: Option<String>,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Held by the active submitter; `try_lock` failure means "pool busy,
    /// run inline".
    submit: Mutex<()>,
}

/// A persistent tile-claiming thread pool. See the module docs.
pub struct Pool {
    inner: Arc<Inner>,
    workers: usize,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    /// Spawns `workers` background threads. `Pool::new(0)` is valid and
    /// always runs jobs inline on the submitting thread. If the OS refuses
    /// to spawn some of the requested threads, the pool degrades to however
    /// many it got (possibly zero) instead of aborting the process.
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                tiles: 0,
                next: 0,
                done: 0,
                panicked: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
        });
        let mut spawned = 0;
        for _ in 0..workers {
            let worker_inner = Arc::clone(&inner);
            if std::thread::Builder::new()
                .name("tensor-pool".into())
                .spawn(move || worker_loop(&worker_inner))
                .is_ok()
            {
                spawned += 1;
            }
        }
        Self {
            inner,
            workers: spawned,
        }
    }

    /// Number of background workers (the submitter adds one more).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task(t)` for every `t in 0..tiles`, sharing the work with the
    /// pool. Blocks until all tiles have completed. Falls back to running
    /// inline when the pool has no workers or is already busy.
    pub fn run(&self, tiles: usize, task: &(dyn Fn(usize) + Sync)) {
        if self.workers == 0 || tiles <= 1 {
            POOL_INLINE.incr();
            POOL_TILES.add(tiles as u64);
            for t in 0..tiles {
                task(t);
            }
            return;
        }
        let _submit = match self.inner.submit.try_lock() {
            Ok(guard) => guard,
            // Busy (nested call) or poisoned: degrade to sequential.
            Err(_) => {
                POOL_INLINE.incr();
                POOL_TILES.add(tiles as u64);
                for t in 0..tiles {
                    task(t);
                }
                return;
            }
        };
        POOL_JOBS.incr();
        POOL_TILES.add(tiles as u64);
        POOL_MAX_JOB_TILES.set_max(tiles as u64);
        // Safety: see `State::task` — we do not return (releasing `_submit`
        // or unwinding past `task`'s borrow) until `done == tiles`.
        let task_static: &'static Task = unsafe { std::mem::transmute(task) };
        let epoch = {
            let mut s = lock(&self.inner.state);
            s.epoch += 1;
            s.task = Some(task_static);
            s.tiles = tiles;
            s.next = 0;
            s.done = 0;
            s.panicked = None;
            self.inner.work_cv.notify_all();
            s.epoch
        };
        run_claimed(&self.inner, epoch, task);
        // Gate the clock reads on the enabled flag so the disabled path
        // costs a single atomic load, per trace's zero-cost contract.
        let wait_started = trace::enabled().then(Instant::now);
        let mut s = lock(&self.inner.state);
        while s.done < s.tiles {
            s = self
                .inner
                .done_cv
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(started) = wait_started {
            POOL_SUBMIT_WAIT_NS.add(started.elapsed().as_nanos() as u64);
        }
        s.task = None;
        // A tile panicked on a worker thread: the worker survived (it only
        // recorded the message), so re-raise here where the caller can see
        // it — or catch it, as the trainer's panic-safe shards do.
        if let Some(message) = s.panicked.take() {
            drop(s);
            panic!("tensor pool task panicked: {message}");
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        let idle_started = trace::enabled().then(Instant::now);
        let (epoch, task) = {
            let mut s = lock(&inner.state);
            while s.task.is_none() || s.epoch == seen {
                s = inner
                    .work_cv
                    .wait(s)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            seen = s.epoch;
            (s.epoch, s.task.expect("checked above"))
        };
        if let Some(started) = idle_started {
            POOL_WORKER_IDLE_NS.add(started.elapsed().as_nanos() as u64);
        }
        run_claimed(inner, epoch, task);
    }
}

/// Claims and runs tiles until the job (identified by `epoch`) is drained.
fn run_claimed(inner: &Inner, epoch: u64, task: &(dyn Fn(usize) + Sync)) {
    loop {
        let t = {
            let mut s = lock(&inner.state);
            if s.epoch != epoch || s.next >= s.tiles {
                return;
            }
            let t = s.next;
            s.next += 1;
            t
        };
        // The guard counts the tile as done even if `task` panics, so the
        // submitter can never be left waiting forever.
        let _done = DoneGuard { inner, epoch };
        // Contain the panic on this side: a poisoned tile must not kill a
        // persistent worker thread (the pool would silently shrink). The
        // submitter re-raises the recorded message after the job drains.
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(t))) {
            let mut s = lock(&inner.state);
            if s.epoch == epoch && s.panicked.is_none() {
                s.panicked = Some(panic_message(payload.as_ref()));
            }
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct DoneGuard<'a> {
    inner: &'a Inner,
    epoch: u64,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        let mut s = lock(&self.inner.state);
        if s.epoch == self.epoch {
            s.done += 1;
            if s.done >= s.tiles {
                self.inner.done_cv.notify_all();
            }
        }
    }
}

/// Runs `task(t)` for every `t in 0..tiles` on exactly `threads` scoped
/// threads (the caller included) with a fixed stride assignment: thread `w`
/// runs tiles `w, w + threads, w + 2·threads, …`.
///
/// This is the honest twin of [`Pool::run`] for tests and benches — it
/// really creates the requested concurrency instead of borrowing whatever
/// the global pool happens to have, and the static assignment means the
/// set of tiles per thread is reproducible too.
pub fn run_scoped(threads: usize, tiles: usize, task: &(dyn Fn(usize) + Sync)) {
    let threads = threads.max(1);
    if threads == 1 || tiles <= 1 {
        POOL_INLINE.incr();
        POOL_TILES.add(tiles as u64);
        for t in 0..tiles {
            task(t);
        }
        return;
    }
    POOL_SCOPED_JOBS.incr();
    POOL_TILES.add(tiles as u64);
    std::thread::scope(|scope| {
        for w in 1..threads.min(tiles) {
            scope.spawn(move || {
                let mut t = w;
                while t < tiles {
                    task(t);
                    t += threads;
                }
            });
        }
        let mut t = 0;
        while t < tiles {
            task(t);
            t += threads;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn record_tiles(run: impl Fn(usize, &(dyn Fn(usize) + Sync))) -> Vec<usize> {
        let seen = Mutex::new(Vec::new());
        run(13, &|t| seen.lock().unwrap().push(t));
        let mut v = seen.into_inner().unwrap();
        v.sort_unstable();
        v
    }

    #[test]
    fn pool_runs_every_tile_exactly_once() {
        let pool = Pool::new(3);
        let tiles = record_tiles(|n, task| pool.run(n, task));
        assert_eq!(tiles, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::new(0);
        let tiles = record_tiles(|n, task| pool.run(n, task));
        assert_eq!(tiles, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = Pool::new(2);
        for _ in 0..50 {
            let count = AtomicUsize::new(0);
            pool.run(7, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 7);
        }
    }

    #[test]
    fn nested_submission_degrades_to_inline() {
        let pool = Pool::new(2);
        let inner_tiles = AtomicUsize::new(0);
        pool.run(4, &|_| {
            // A nested job must not deadlock on the busy pool.
            pool.run(3, &|_| {
                inner_tiles.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_tiles.load(Ordering::Relaxed), 4 * 3);
    }

    #[test]
    fn scoped_runs_every_tile_exactly_once() {
        for threads in [1, 2, 5, 8, 16] {
            let seen = Mutex::new(Vec::new());
            run_scoped(threads, 11, &|t| seen.lock().unwrap().push(t));
            let mut v = seen.into_inner().unwrap();
            v.sort_unstable();
            assert_eq!(v, (0..11).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn trace_counters_record_pool_activity() {
        let pool = Pool::new(2);
        let (jobs0, tiles0, inline0) = (POOL_JOBS.get(), POOL_TILES.get(), POOL_INLINE.get());
        trace::enable();
        pool.run(16, &|_| {});
        pool.run(1, &|_| {}); // single tile → inline fallback
        trace::disable();
        pool.run(16, &|_| {}); // disabled → not counted
                               // other tests may run pooled matmuls concurrently, so assert deltas
                               // as lower bounds rather than exact counts
        assert!(POOL_JOBS.get() > jobs0, "parallel job not counted");
        assert!(POOL_TILES.get() >= tiles0 + 17, "tiles not counted");
        assert!(POOL_INLINE.get() > inline0, "inline fallback not counted");
    }

    #[test]
    fn panicking_tile_surfaces_on_submitter_and_pool_survives() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, &|t| {
                if t == 3 {
                    panic!("tile 3 is poisoned");
                }
            });
        }));
        let message = panic_message(caught.unwrap_err().as_ref());
        assert!(message.contains("tile 3 is poisoned"), "got: {message}");

        // every worker must still be alive and the pool reusable
        for _ in 0..20 {
            let count = AtomicUsize::new(0);
            pool.run(9, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 9);
        }
    }
}
