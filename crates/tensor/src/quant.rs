//! Int8 post-training quantization: [`QuantMatrix`] storage plus the
//! quantized matmul kernels the serving path runs on.
//!
//! # Scheme
//!
//! Asymmetric affine quantization, one `(scale, zero_point)` pair per
//! *stored row*: `x ≈ scale · (q − zero_point)` with `q: i8`. A weight
//! matrix `W` (shape `k × n`, used as `x · W`) is stored **transposed**
//! (`n × k`), so each quantization row is one output channel and each
//! output element of [`quant_matmul`] is a dot product of two contiguous
//! i8 rows — the same memory pattern as [`crate::matmul_a_bt`]. Embedding
//! tables are quantized row-per-token via [`QuantMatrix::quantize_rows`]
//! and looked up with [`QuantMatrix::dequantize_row_into`].
//!
//! The scale uses 254 of the 256 representable steps (`(max−min)/254`), so
//! integer rounding of the zero point can never push a quantized value out
//! of `i8` range by more than the clamp at `−128`; the round-trip error is
//! at most `scale/2` per element (up to the final rounding into `f32`),
//! which the property tests assert.
//!
//! # Kernels
//!
//! [`quant_matmul`] computes `C = A · W` with `A: f32`. Activation rows
//! are quantized on the fly to **u8** (per-row affine, the standard
//! unsigned-activation × signed-weight pairing), the inner product is
//! accumulated exactly in `i32`, the zero-point correction terms in
//! `i64`, and the single dequantization happens at the accumulator:
//!
//! ```text
//! C[i][j] = sa_i · sb_j · (Σ_p qa[i][p]·qb[j][p]
//!                          − zb_j·Σ_p qa[i][p] − za_i·Σ_p qb[j][p]
//!                          + k·za_i·zb_j)
//! ```
//!
//! The weight-row sums `Σ qb` are precomputed at quantization time, so the
//! hot loop is one u8×i8 dot product per output element. On x86-64 with
//! AVX-512 VNNI that dot runs on `vpdpbusd` (64 multiply-adds per
//! instruction, detected at runtime); everywhere else a portable loop
//! autovectorizes through `vpmaddwd`-style widening code. Both produce the
//! same exact integer, so kernel selection never changes results.
//!
//! # Determinism
//!
//! Integer accumulation is exact and associative, and the final
//! dequantization is a fixed `f64` expression per output element, so for a
//! fixed [`QuantMatrix`] the kernels are **bit-identical for every thread
//! count and tile split** — a strictly stronger version of the f32
//! kernels' contract. Quantized results are *not* bit-identical to the f32
//! kernels (quantization is lossy by design); that trade is opt-in at the
//! serving layer. The kernels run on the same [`crate::pool`] row-tiling
//! driver as [`crate::matmul`].

use crate::backend::{self, drive, Exec, MatmulDesc};
use crate::Tensor;

#[cfg(target_arch = "x86_64")]
use crate::backend::MatmulAlgo;

/// Per-row affine parameters for one quantized row.
#[derive(Clone, Copy)]
struct RowQuant {
    scale: f32,
    zero_point: i32,
    /// Sum of the row's quantized values, precomputed for the zero-point
    /// correction terms.
    qsum: i32,
}

/// Quantizes one f32 row into `out` and returns its affine parameters.
///
/// Uses 254 steps of the i8 range so the integer-rounded zero point keeps
/// every in-range value within `[−128, 127]` after rounding (the single
/// half-step that can land on `−128.5` clamps with error exactly
/// `scale/2`). Constant rows get an exact symmetric encoding.
fn quantize_row(row: &[f32], out: &mut [i8]) -> RowQuant {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &x in row {
        min = min.min(x);
        max = max.max(x);
    }
    if row.is_empty() {
        return RowQuant {
            scale: 1.0,
            zero_point: 0,
            qsum: 0,
        };
    }
    if min == max {
        // Constant row: encode exactly as ±127 · |c|/127 (or all-zero).
        let c = min;
        let scale = if c == 0.0 { 1.0 } else { c.abs() / 127.0 };
        let q = if c == 0.0 {
            0i8
        } else if c > 0.0 {
            127
        } else {
            -127
        };
        out.fill(q);
        return RowQuant {
            scale,
            zero_point: 0,
            qsum: i32::from(q) * row.len() as i32,
        };
    }
    let scale = (max - min) / 254.0;
    let inv = 1.0 / f64::from(scale);
    let zero_point = (-128.0 - f64::from(min) * inv).round() as i32;
    let mut qsum = 0i32;
    for (o, &x) in out.iter_mut().zip(row) {
        let q = (f64::from(x) * inv + f64::from(zero_point)).round();
        let q = (q as i32).clamp(-128, 127);
        *o = q as i8;
        qsum += q;
    }
    RowQuant {
        scale,
        zero_point,
        qsum,
    }
}

/// An i8-quantized matrix with per-row scale and zero point.
///
/// Built either from a weight matrix via [`QuantMatrix::quantize`] (stored
/// transposed, one quantization row per output channel) or from a lookup
/// table via [`QuantMatrix::quantize_rows`] (stored as given, one
/// quantization row per table row). Shape accessors report the *logical*
/// orientation, so `quant_matmul(&a, &QuantMatrix::quantize(&w))` reads
/// exactly like `matmul(&a, &w)`.
pub struct QuantMatrix {
    /// Stored row-major, `srows × scols`.
    data: Vec<i8>,
    srows: usize,
    scols: usize,
    rows_q: Vec<RowQuant>,
    /// True when the stored layout is the transpose of the logical matrix
    /// (the weight form built by [`QuantMatrix::quantize`]).
    transposed: bool,
    /// VNNI-blocked copy of the weight payload, built at quantization time
    /// when the CPU can run it (see [`pack_vnni`]). `None` on the rows
    /// form and on machines without AVX-512 VNNI.
    packed: Option<Vec<i8>>,
    /// Per-stored-row dequant parameters in SIMD-friendly planar form:
    /// zero point, correction `qsum − scols·zp`, and scale, one entry per
    /// row. With these, the accumulator dequantizes as
    /// `C = (sa · chan_scale_j) · (dot − chan_zp_j·Σqa − za·chan_corr_j)`.
    chan_zp: Vec<i64>,
    chan_corr: Vec<i64>,
    chan_scale: Vec<f64>,
}

/// Repacks the `n × k` weight payload into the AVX-512 VNNI GEMM layout:
/// 16-channel × 4-deep blocks, zero-padded to multiples of 16 (channels)
/// and 4 (depth). One 64-byte block holds `k`-positions `4g..4g+4` of
/// output channels `16b..16b+16`, so a single `vpdpbusd` against a
/// broadcast 4-byte activation group advances sixteen output channels at
/// once — no horizontal reductions anywhere in the kernel. Zero padding is
/// exact: padded products contribute `q · 0 = 0` to the i32 accumulator.
fn pack_vnni(data: &[i8], n: usize, k: usize) -> Vec<i8> {
    let kp = k.div_ceil(4) * 4;
    let np = n.div_ceil(16) * 16;
    let mut out = vec![0i8; np * kp];
    for j in 0..n {
        let (block, lane) = (j / 16, j % 16);
        for p in 0..k {
            let (group, byte) = (p / 4, p % 4);
            out[block * kp * 16 + group * 64 + lane * 4 + byte] = data[j * k + p];
        }
    }
    out
}

impl QuantMatrix {
    /// Quantizes a weight matrix `w` (shape `k × n`, used as `x · W`).
    ///
    /// Storage is transposed (`n × k`) so each quantization row is one
    /// output channel; [`QuantMatrix::shape`] still reports `(k, n)`.
    pub fn quantize(w: &Tensor) -> Self {
        let mut q = Self::quantize_rows(&w.transpose());
        q.transposed = true;
        if has_vnni() {
            q.packed = Some(pack_vnni(&q.data, q.srows, q.scols));
        }
        q
    }

    /// Quantizes `m` row by row in its stored layout (for embedding-style
    /// row lookup via [`QuantMatrix::dequantize_row_into`]).
    pub fn quantize_rows(m: &Tensor) -> Self {
        let (srows, scols) = m.shape();
        let mut data = vec![0i8; srows * scols];
        let rows_q: Vec<RowQuant> = (0..srows)
            .map(|r| quantize_row(m.row(r), &mut data[r * scols..(r + 1) * scols]))
            .collect();
        let chan_zp: Vec<i64> = rows_q.iter().map(|r| i64::from(r.zero_point)).collect();
        let chan_corr: Vec<i64> = rows_q
            .iter()
            .map(|r| i64::from(r.qsum) - scols as i64 * i64::from(r.zero_point))
            .collect();
        let chan_scale: Vec<f64> = rows_q.iter().map(|r| f64::from(r.scale)).collect();
        Self {
            data,
            srows,
            scols,
            rows_q,
            transposed: false,
            packed: None,
            chan_zp,
            chan_corr,
            chan_scale,
        }
    }

    /// Logical shape: `(k, n)` for the weight form, stored shape otherwise.
    pub fn shape(&self) -> (usize, usize) {
        if self.transposed {
            (self.scols, self.srows)
        } else {
            (self.srows, self.scols)
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.shape().0
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.shape().1
    }

    /// Whether this is the transposed weight form built by
    /// [`QuantMatrix::quantize`] (quantization rows = output channels).
    pub fn is_weight_form(&self) -> bool {
        self.transposed
    }

    /// Scale of quantization row `r` (a stored row: an output channel in
    /// the weight form, a table row otherwise).
    pub fn row_scale(&self, r: usize) -> f32 {
        self.rows_q[r].scale
    }

    /// Zero point of quantization row `r`.
    pub fn row_zero_point(&self, r: usize) -> i32 {
        self.rows_q[r].zero_point
    }

    /// Heap bytes of the i8 payload (excludes per-row parameters).
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// Dequantizes back to an f32 tensor in the logical orientation.
    pub fn dequantize(&self) -> Tensor {
        let mut stored = Tensor::zeros(self.srows, self.scols);
        for r in 0..self.srows {
            self.stored_row_into(r, stored.row_mut(r));
        }
        if self.transposed {
            stored.transpose()
        } else {
            stored
        }
    }

    /// Dequantizes stored row `r` into `out` (embedding lookup).
    ///
    /// Only meaningful for the [`QuantMatrix::quantize_rows`] form, where
    /// stored and logical rows coincide.
    ///
    /// # Panics
    ///
    /// Panics on the weight form, or if `out.len() != cols()`.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        assert!(
            !self.transposed,
            "dequantize_row_into requires the quantize_rows form"
        );
        self.stored_row_into(r, out);
    }

    fn stored_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.scols, "row length mismatch");
        let q = &self.data[r * self.scols..(r + 1) * self.scols];
        let RowQuant {
            scale, zero_point, ..
        } = self.rows_q[r];
        // q − zp spans at most [-255, 255], exact in f32, so the only
        // rounding is the final multiply — that single rounding is what
        // the scale/2 error bound is stated up to. Staying in f32 keeps
        // the loop vectorizable; embedding lookups dequantize on the
        // serving hot path, once per row per timestep.
        let zp = zero_point as f32;
        for (o, &v) in out.iter_mut().zip(q) {
            *o = (f32::from(v) - zp) * scale;
        }
    }
}

impl std::fmt::Debug for QuantMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, c) = self.shape();
        f.debug_struct("QuantMatrix")
            .field("rows", &r)
            .field("cols", &c)
            .field("weight_form", &self.transposed)
            .finish_non_exhaustive()
    }
}

/// `C = A · W` with `A: f32 (m × k)` and `W` int8-quantized (`k × n`
/// logical), allocating the output.
///
/// # Panics
///
/// Panics if `w` is not the weight form, or if `a.cols() != w.rows()`.
pub fn quant_matmul(a: &Tensor, w: &QuantMatrix) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), w.cols());
    quant_matmul_exec(a, w, &mut out, Exec::Auto);
    out
}

/// [`quant_matmul`] into a caller-provided output buffer (overwritten).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn quant_matmul_into(a: &Tensor, w: &QuantMatrix, out: &mut Tensor) {
    quant_matmul_exec(a, w, out, Exec::Auto);
}

/// [`quant_matmul`] pinned to exactly `threads` threads (for tests and
/// benches exercising the bit-identity contract).
pub fn quant_matmul_with_threads(a: &Tensor, w: &QuantMatrix, threads: usize) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), w.cols());
    quant_matmul_exec(a, w, &mut out, Exec::Threads(threads));
    out
}

/// `C = Aᵀ · W` with `A: f32 (k × m)` and `W` int8-quantized (`k × n`
/// logical), allocating the output.
///
/// `A` is transposed into a scratch buffer first (activation matrices on
/// this path are small); the product then reuses the [`quant_matmul`]
/// row-dot kernel, so the determinism contract is identical.
///
/// # Panics
///
/// Panics if `w` is not the weight form, or if `a.rows() != w.rows()`.
pub fn quant_matmul_at_b(a: &Tensor, w: &QuantMatrix) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), w.cols());
    quant_matmul_exec(&a.transpose(), w, &mut out, Exec::Auto);
    out
}

/// [`quant_matmul_at_b`] into a caller-provided output buffer.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn quant_matmul_at_b_into(a: &Tensor, w: &QuantMatrix, out: &mut Tensor) {
    quant_matmul_exec(&a.transpose(), w, out, Exec::Auto);
}

/// [`quant_matmul_at_b`] pinned to exactly `threads` threads.
pub fn quant_matmul_at_b_with_threads(a: &Tensor, w: &QuantMatrix, threads: usize) -> Tensor {
    let mut out = Tensor::zeros(a.cols(), w.cols());
    quant_matmul_exec(&a.transpose(), w, &mut out, Exec::Threads(threads));
    out
}

/// Quantizes one f32 activation row to u8 (the unsigned side of the
/// u8×i8 VNNI pairing) and returns its affine parameters.
///
/// Same 254-step construction as [`quantize_row`], so the same `scale/2`
/// error bound holds; the zero point is the (possibly negative) integer
/// `round(−min/scale)` and lives in `i32`.
fn quantize_row_u8(row: &[f32], out: &mut [u8]) -> RowQuant {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &x in row {
        min = min.min(x);
        max = max.max(x);
    }
    if row.is_empty() {
        return RowQuant {
            scale: 1.0,
            zero_point: 0,
            qsum: 0,
        };
    }
    if min == max {
        // Constant row: encode exactly as 255 · |c|/255 against a zero
        // point at the opposite end of the range (or all-zero).
        let c = min;
        let scale = if c == 0.0 { 1.0 } else { c.abs() / 255.0 };
        let (q, zero_point) = if c == 0.0 {
            (0u8, 0i32)
        } else if c > 0.0 {
            (255, 0)
        } else {
            (0, 255)
        };
        out.fill(q);
        return RowQuant {
            scale,
            zero_point,
            qsum: i32::from(q) * row.len() as i32,
        };
    }
    let scale = (max - min) / 254.0;
    let inv = 1.0 / scale;
    let zero_point = (-f64::from(min) * f64::from(inv)).round() as i32;
    // Hot path (runs per activation row per kernel call): stay in f32 and
    // round ties-to-even so the loop vectorises; the result is still a
    // pure function of the row, which is all determinism needs.
    let zpf = zero_point as f32;
    let mut qsum = 0i32;
    for (o, &x) in out.iter_mut().zip(row) {
        let q = (x.mul_add(inv, zpf)).round_ties_even() as i32;
        let q = q.clamp(0, 255);
        *o = q as u8;
        qsum += q;
    }
    RowQuant {
        scale,
        zero_point,
        qsum,
    }
}

fn quant_matmul_exec(a: &Tensor, w: &QuantMatrix, out: &mut Tensor, exec: Exec) {
    assert!(
        w.is_weight_form(),
        "quant_matmul requires a QuantMatrix::quantize weight"
    );
    let (m, k) = a.shape();
    let (k2, n) = w.shape();
    assert_eq!(k, k2, "quant_matmul inner dimension mismatch: {k} vs {k2}");
    assert_eq!(out.shape(), (m, n), "quant_matmul output shape mismatch");

    // The int8 product goes through the same descriptor API as the f32
    // kernels: the active backend picks the algorithm (VNNI-packed or
    // portable) per shape and the choice is recorded in the trace
    // counters. Both kernels compute the same exact integers, so the
    // selection never changes results.
    let desc = MatmulDesc::a_b(m, k, n);
    let algo = backend::select_quant_recorded(&desc, w.packed.is_some());
    #[cfg(not(target_arch = "x86_64"))]
    let _ = algo;

    // Dynamic per-row activation quantization, done once on the calling
    // thread (O(m·k), ~0.4% of the O(m·k·n) product) so tile workers see
    // identical inputs regardless of the split.
    let a_data = a.as_slice();
    let mut qa = vec![0u8; m * k];
    let aq: Vec<RowQuant> = (0..m)
        .map(|i| quantize_row_u8(&a_data[i * k..(i + 1) * k], &mut qa[i * k..(i + 1) * k]))
        .collect();

    // Dequantizes channel `j`'s raw dot for activation row parameters
    // `ai`. The corrections run in i64: the dot itself fits i32
    // (u8·|i8| ≤ 2¹⁵, k ≤ 2¹⁶ lanes), but zp·qsum products from badly
    // conditioned rows may not. The f64 expression and its operation
    // order are mirrored exactly by the SIMD path below.
    let finish = |ai: RowQuant, j: usize, acc: i32| -> f32 {
        let t = i64::from(acc)
            - w.chan_zp[j] * i64::from(ai.qsum)
            - i64::from(ai.zero_point) * w.chan_corr[j];
        (f64::from(ai.scale) * w.chan_scale[j] * t as f64) as f32
    };

    let w_data = &w.data;
    #[cfg(target_arch = "x86_64")]
    if algo == MatmulAlgo::QuantVnni {
        let packed = w
            .packed
            .as_ref()
            .expect("QuantVnni selected without a packed layout");
        let kp = k.div_ceil(4) * 4;
        // activation rows re-padded to the packed depth so the kernel can
        // stream whole 4-byte groups; padded bytes multiply zero weights
        let qa_pad: Vec<u8> = if kp == k {
            qa
        } else {
            let mut padded = vec![0u8; m * kp];
            for i in 0..m {
                padded[i * kp..i * kp + k].copy_from_slice(&qa[i * k..(i + 1) * k]);
            }
            padded
        };
        let full = n / 16 * 16;
        drive(exec, m, n, k, out, &|lo, hi, rows| {
            // channel blocks outermost: one ~5 KB packed block stays
            // L1-resident while every activation row of the tile streams
            // over it
            for jb in (0..full).step_by(16) {
                let block = &packed[(jb / 16) * kp * 16..(jb / 16 + 1) * kp * 16];
                for i in lo..hi {
                    let qa_row = &qa_pad[i * kp..(i + 1) * kp];
                    let at = (i - lo) * n + jb;
                    // Safety: `packed` is only built when VNNI was detected.
                    unsafe {
                        vnni_block_matmul(
                            qa_row,
                            block,
                            &aq[i],
                            &w.chan_zp[jb..jb + 16],
                            &w.chan_corr[jb..jb + 16],
                            &w.chan_scale[jb..jb + 16],
                            &mut rows[at..at + 16],
                        );
                    }
                }
            }
            // ragged channel tail (< 16 outputs): scalar row dots
            for i in lo..hi {
                let qa_row = &qa_pad[i * kp..(i + 1) * kp];
                let at = (i - lo) * n;
                for (j, c) in rows[at..at + n].iter_mut().enumerate().skip(full) {
                    let acc = dot_u8i8_portable(&qa_row[..k], &w_data[j * k..(j + 1) * k]);
                    *c = finish(aq[i], j, acc);
                }
            }
        });
        return;
    }

    drive(exec, m, n, k, out, &|lo, hi, rows| {
        for i in lo..hi {
            let qa_row = &qa[i * k..(i + 1) * k];
            let ai = aq[i];
            let c_row = &mut rows[(i - lo) * n..(i - lo + 1) * n];
            for (j, c) in c_row.iter_mut().enumerate() {
                let acc = dot_u8i8_portable(qa_row, &w_data[j * k..(j + 1) * k]);
                *c = finish(ai, j, acc);
            }
        }
    });
}

/// Whether this process can run the AVX-512 VNNI kernel (cached).
///
/// Kernel selection never changes results — both implementations compute
/// the same exact integers — it only changes how fast they arrive.
fn has_vnni() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static HAS_VNNI: OnceLock<bool> = OnceLock::new();
        *HAS_VNNI.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vnni")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// u8 × i8 dot product accumulated exactly in i32, portable form.
///
/// Written as a plain indexed reduction so LLVM lowers it to widening
/// multiply-add vector code (`vpmaddwd` on AVX-capable x86). Every product
/// fits `i16` (255·128 < 2¹⁵) and is widened to i32 before summation, so
/// i32 cannot overflow below `k = 2¹⁶` lanes — far beyond any layer width
/// here; integer addition is associative, so the result is independent of
/// vectorisation and thread count.
fn dot_u8i8_portable(a: &[u8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// One activation row × sixteen output channels, fused on AVX-512 VNNI:
/// the integer dots *and* the per-channel dequantization.
///
/// `qa_row` is one padded activation row (`kp` bytes, `kp % 4 == 0`);
/// `block` is one [`pack_vnni`] channel block (`kp · 16` bytes). Each
/// iteration broadcasts a 4-byte activation group and runs one `vpdpbusd`:
/// 64 multiply-adds, one per (channel, depth) pair, accumulated exactly in
/// the sixteen i32 lanes. `vpdpbusd` widens each u8×i8 product to i16
/// (255·128 < 2¹⁵, exact) and adds the 4-product group into i32 without
/// saturation (that would be `vpdpbusds`), so the lanes equal
/// [`dot_u8i8_portable`] bit for bit.
///
/// The dequantization then runs 8-wide on i64/f64 lanes with the exact
/// value and operation order of the scalar `finish` expression in
/// [`quant_matmul_exec`] — `(sa·sb_j)·(dot − zb_j·Σqa − za·corr_j)` — so
/// block width is as invisible in the output as tile split is.
///
/// # Safety
///
/// Caller must ensure avx512f, avx512bw, avx512dq and avx512vnni are
/// available, and that `zb`, `corr`, `sb` and `c` hold at least 16
/// elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vnni")]
#[allow(clippy::too_many_arguments)] // flat parameter bundle on the hot path
unsafe fn vnni_block_matmul(
    qa_row: &[u8],
    block: &[i8],
    ai: &RowQuant,
    zb: &[i64],
    corr: &[i64],
    sb: &[f64],
    c: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(qa_row.len() % 4, 0);
    debug_assert_eq!(block.len(), qa_row.len() * 16);
    let groups = qa_row.len() / 4;
    // four interleaved accumulator chains hide the ~5-cycle vpdpbusd
    // latency; integer addition is exact, so the merged sum is identical
    // to a single chain
    let mut lanes = [_mm512_setzero_si512(); 4];
    let step = |lane: __m512i, g: usize| {
        let dword = qa_row.as_ptr().add(4 * g).cast::<i32>().read_unaligned();
        let va = _mm512_set1_epi32(dword);
        let vb = _mm512_loadu_si512(block.as_ptr().add(64 * g).cast());
        _mm512_dpbusd_epi32(lane, va, vb)
    };
    let mut g = 0;
    while g + 4 <= groups {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = step(*lane, g + l);
        }
        g += 4;
    }
    while g < groups {
        lanes[0] = step(lanes[0], g);
        g += 1;
    }
    let acc = _mm512_add_epi32(
        _mm512_add_epi32(lanes[0], lanes[1]),
        _mm512_add_epi32(lanes[2], lanes[3]),
    );
    // widen the sixteen i32 dots to two zmm of i64 and apply the
    // zero-point corrections: t = dot − zb·Σqa − za·corr
    let vsum = _mm512_set1_epi64(i64::from(ai.qsum));
    let vza = _mm512_set1_epi64(i64::from(ai.zero_point));
    let vsa = _mm512_set1_pd(f64::from(ai.scale));
    let halves = [
        _mm512_cvtepi32_epi64(_mm512_castsi512_si256(acc)),
        _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64::<1>(acc)),
    ];
    for (h, dots64) in halves.into_iter().enumerate() {
        let vzb = _mm512_loadu_si512(zb.as_ptr().add(8 * h).cast());
        let vcorr = _mm512_loadu_si512(corr.as_ptr().add(8 * h).cast());
        let t = _mm512_sub_epi64(
            dots64,
            _mm512_add_epi64(
                _mm512_mullo_epi64(vzb, vsum),
                _mm512_mullo_epi64(vza, vcorr),
            ),
        );
        // (sa · sb) · t, in that association, matching the scalar path
        let vsb = _mm512_loadu_pd(sb.as_ptr().add(8 * h));
        let r = _mm512_mul_pd(_mm512_mul_pd(vsa, vsb), _mm512_cvtepi64_pd(t));
        _mm256_storeu_ps(c.as_mut_ptr().add(8 * h), _mm512_cvtpd_ps(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, Initializer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn round_trip_error_is_within_half_scale_per_row() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = Initializer::Uniform(2.0).init(7, 33, &mut rng);
        let q = QuantMatrix::quantize_rows(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            let bound = 0.5 * q.row_scale(r);
            for (x, y) in m.row(r).iter().zip(back.row(r)) {
                let err = (x - y).abs();
                assert!(
                    err <= bound + x.abs() * f32::EPSILON,
                    "row {r}: err {err} > scale/2 {bound}"
                );
            }
        }
    }

    #[test]
    fn constant_and_zero_rows_round_trip_exactly() {
        let m = Tensor::from_rows(&[&[3.5, 3.5, 3.5], &[0.0, 0.0, 0.0], &[-2.0, -2.0, -2.0]]);
        let q = QuantMatrix::quantize_rows(&m);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn weight_form_reports_logical_shape() {
        let w = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]); // 3×2
        let q = QuantMatrix::quantize(&w);
        assert_eq!(q.shape(), (3, 2));
        assert_eq!((q.rows(), q.cols()), (3, 2));
        assert!(q.is_weight_form());
        assert_eq!(q.payload_bytes(), 6);
        assert_eq!(q.dequantize().shape(), (3, 2));
    }

    #[test]
    fn quant_matmul_tracks_f32_matmul() {
        let mut rng = StdRng::seed_from_u64(5);
        for (m, k, n) in [(1, 1, 1), (4, 9, 5), (17, 33, 13)] {
            let a = Initializer::Uniform(1.0).init(m, k, &mut rng);
            let w = Initializer::Uniform(0.5).init(k, n, &mut rng);
            let qw = QuantMatrix::quantize(&w);
            let exact = matmul(&a, &w);
            let quant = quant_matmul(&a, &qw);
            assert_eq!(quant.shape(), (m, n));
            // loose tracking bound: per-element error ~ k·(sa+sb)/2 terms
            assert!(
                max_abs_diff(&exact, &quant) < 0.05 * k as f32 * 0.01 + 0.05,
                "({m},{k},{n}) diverged: {}",
                max_abs_diff(&exact, &quant)
            );
        }
    }

    #[test]
    fn quant_matmul_is_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(21);
        for (m, k, n) in [(5, 3, 4), (33, 65, 17)] {
            let a = Initializer::Uniform(1.0).init(m, k, &mut rng);
            let w = Initializer::Uniform(1.0).init(k, n, &mut rng);
            let qw = QuantMatrix::quantize(&w);
            let auto = quant_matmul(&a, &qw);
            for threads in [1, 2, 4, 8] {
                assert_eq!(quant_matmul_with_threads(&a, &qw, threads), auto);
            }
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose_and_into_reuses_buffers() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Initializer::Uniform(1.0).init(6, 4, &mut rng); // k=6, m=4
        let w = Initializer::Uniform(1.0).init(6, 5, &mut rng);
        let qw = QuantMatrix::quantize(&w);
        let expected = quant_matmul(&a.transpose(), &qw);
        assert_eq!(quant_matmul_at_b(&a, &qw), expected);
        let mut out = Tensor::full(4, 5, 9.0);
        quant_matmul_at_b_into(&a, &qw, &mut out);
        assert_eq!(out, expected);
        for threads in [1, 2, 4] {
            assert_eq!(quant_matmul_at_b_with_threads(&a, &qw, threads), expected);
        }
        let mut out2 = Tensor::full(4, 5, -1.0);
        quant_matmul_into(&a.transpose(), &qw, &mut out2);
        assert_eq!(out2, expected);
    }

    #[test]
    fn embedding_row_lookup_matches_dequantize() {
        let mut rng = StdRng::seed_from_u64(8);
        let table = Initializer::Uniform(0.1).init(12, 7, &mut rng);
        let q = QuantMatrix::quantize_rows(&table);
        let full = q.dequantize();
        let mut row = vec![0.0f32; 7];
        for r in 0..12 {
            q.dequantize_row_into(r, &mut row);
            assert_eq!(&row[..], full.row(r));
        }
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rows_form_is_rejected_by_matmul() {
        let m = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let q = QuantMatrix::quantize_rows(&m);
        let _ = quant_matmul(&m, &q);
    }

    #[test]
    #[should_panic(expected = "quantize_rows")]
    fn weight_form_rejects_row_lookup() {
        let w = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let q = QuantMatrix::quantize(&w);
        let mut row = vec![0.0f32; 2];
        q.dequantize_row_into(0, &mut row);
    }

    /// Whatever kernel ran (packed VNNI blocks, their ragged tails, or the
    /// portable row-dot), the output must equal a naive scalar evaluation
    /// of the documented dequant formula — at shapes straddling the
    /// 16-channel and 4-depth block boundaries.
    #[test]
    fn kernel_paths_match_naive_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 3, 15),
            (2, 4, 16),
            (5, 5, 17),
            (4, 127, 33),
            (3, 320, 40),
        ] {
            let a = Initializer::Uniform(1.0).init(m, k, &mut rng);
            let w = Initializer::Uniform(1.0).init(k, n, &mut rng);
            let qw = QuantMatrix::quantize(&w);

            let mut qa = vec![0u8; m * k];
            let aq: Vec<RowQuant> = (0..m)
                .map(|i| quantize_row_u8(a.row(i), &mut qa[i * k..(i + 1) * k]))
                .collect();
            let mut reference = Tensor::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let dot =
                        dot_u8i8_portable(&qa[i * k..(i + 1) * k], &qw.data[j * k..(j + 1) * k]);
                    let t = i64::from(dot)
                        - qw.chan_zp[j] * i64::from(aq[i].qsum)
                        - i64::from(aq[i].zero_point) * qw.chan_corr[j];
                    reference.row_mut(i)[j] =
                        (f64::from(aq[i].scale) * qw.chan_scale[j] * t as f64) as f32;
                }
            }
            assert_eq!(quant_matmul(&a, &qw), reference, "({m},{k},{n})");
        }
    }

    #[test]
    fn zero_sized_shapes_are_handled() {
        let a = Tensor::zeros(0, 3);
        let w = Tensor::zeros(3, 2);
        let qw = QuantMatrix::quantize(&w);
        assert_eq!(quant_matmul(&a, &qw).shape(), (0, 2));
        let a = Tensor::zeros(2, 0);
        let w = Tensor::zeros(0, 2);
        let qw = QuantMatrix::quantize(&w);
        let c = quant_matmul(&a, &qw);
        assert_eq!(c.shape(), (2, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }
}
