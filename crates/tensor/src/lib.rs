//! Dense `f32` matrix/tensor substrate used by the autograd and neural-network
//! crates.
//!
//! The paper's neural models (a 2-layer LSTM and BERT/RoBERTa-style
//! transformer encoders) only ever need rank-2 dense math on CPU: activations
//! are `[seq_len, hidden]` or `[batch, features]` matrices. This crate
//! therefore provides a deliberately simple, cache-friendly 2-D [`Tensor`]
//! in row-major layout together with the kernels those models are hot on:
//! blocked matrix multiplication (including transposed variants that avoid
//! materialising transposes), elementwise maps, row-wise softmax, and
//! reductions.
//!
//! Design notes (following the Rust performance-book guidance):
//! * a `Tensor` is a single heap allocation (`Vec<f32>`) plus two `usize`
//!   dimensions — no `Rc`, no generic element type, no views with lifetimes;
//! * hot kernels take `&mut` outputs so callers can reuse workhorse buffers;
//! * all indexing goes through `#[inline]` accessors that bounds-check in
//!   debug builds only where possible;
//! * large products run row-tiled on a persistent worker [`pool`]
//!   (`TENSOR_THREADS`-overridable) with bit-identical results for every
//!   thread count — see the [`matmul`] module docs for the contract;
//! * kernels dispatch through a pluggable device [`backend`]
//!   (`TENSOR_BACKEND`-selectable: portable scalar, or AVX2/AVX-512 SIMD)
//!   with cudnn-style op descriptors and per-shape algorithm selection —
//!   backends are bit-identical to the scalar reference by contract.

#![warn(missing_docs)]

pub mod backend;
mod init;
mod matmul;
mod ops;
pub mod pool;
mod quant;
mod simd;
mod tensor;

pub use backend::{with_backend, Backend, MatmulAlgo, MatmulDesc, MatmulOp};
pub use init::{xavier_normal, xavier_uniform, Initializer};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_into, matmul_a_bt_with_threads, matmul_at_b, matmul_at_b_into,
    matmul_at_b_with_threads, matmul_into, matmul_with_threads,
};
pub use ops::{log_softmax_rows, softmax_rows, softmax_rows_into};
pub use pool::num_threads;
pub use quant::{
    quant_matmul, quant_matmul_at_b, quant_matmul_at_b_into, quant_matmul_at_b_with_threads,
    quant_matmul_into, quant_matmul_with_threads, QuantMatrix,
};
pub use simd::SimdBackend;
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;
