//! The core 2-D dense tensor type.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense row-major `f32` matrix.
///
/// `Tensor` is the unit of data everywhere in the neural stack: model
/// parameters, activations and gradients are all `Tensor`s. A vector is
/// represented as a `1 × n` or `n × 1` tensor.
///
/// # Examples
///
/// ```
/// use tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a.get(1, 0), 3.0);
/// assert_eq!(a.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot form a {rows}x{cols} tensor",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Builds a tensor from explicit rows. All rows must share one length.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a tensor from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Builds a `1 × n` row-vector tensor.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            data: values.to_vec(),
            rows: 1,
            cols: values.len(),
        }
    }

    /// Builds an `n × 1` column-vector tensor.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            data: values.to_vec(),
            rows: values.len(),
            cols: 1,
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new tensor that is the transpose of `self`.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Reshapes in place. The element count must be preserved.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols != self.len()`.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape changes element count"
        );
        self.rows = rows;
        self.cols = cols;
    }

    /// Returns a copy of rows `start..end` as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Self {
            data: self.data[start * self.cols..end * self.cols].to_vec(),
            rows: end - start,
            cols: self.cols,
        }
    }

    /// Vertically stacks `tensors` (all must share a column count).
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or column counts differ.
    pub fn vstack(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "vstack of zero tensors");
        let cols = tensors[0].cols;
        let rows: usize = tensors.iter().map(|t| t.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            assert_eq!(t.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&t.data);
        }
        Self { data, rows, cols }
    }

    /// Horizontally concatenates `tensors` (all must share a row count).
    pub fn hstack(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "hstack of zero tensors");
        let rows = tensors[0].rows;
        let cols: usize = tensors.iter().map(|t| t.cols).sum();
        let mut out = Self::zeros(rows, cols);
        let mut offset = 0;
        for t in tensors {
            assert_eq!(t.rows, rows, "hstack row mismatch");
            for r in 0..rows {
                out.data[r * cols + offset..r * cols + offset + t.cols].copy_from_slice(t.row(r));
            }
            offset += t.cols;
        }
        out
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination `self[i] = f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_inplace(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    /// Elementwise product (Hadamard), returning a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Self {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Self {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// `self += alpha * other` (BLAS `axpy`), the hot path of every optimizer.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Adds the `1 × cols` row vector `bias` to every row in place.
    pub fn add_row_broadcast(&mut self, bias: &Tensor) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(&bias.data) {
                *a += b;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`NaN` for an empty tensor).
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Column-wise sum as a `1 × cols` tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Row-wise sum as an `rows × 1` tensor.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element of row `r` (first maximum on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Clips every element into `[-limit, limit]` in place (gradient clipping).
    pub fn clip_inplace(&mut self, limit: f32) {
        assert!(limit >= 0.0, "clip limit must be non-negative");
        for x in &mut self.data {
            *x = x.clamp(-limit, limit);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Fills every element with `v`, keeping the allocation.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// True when any element is `NaN` or infinite — used by trainers to
    /// detect divergence early.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute difference to `other`; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max),
        )
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, " …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "cannot form")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.get(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn row_accessors() {
        let mut t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        t.set_row(0, &[9.0, 8.0]);
        assert_eq!(t.row(0), &[9.0, 8.0]);
    }

    #[test]
    fn stack_operations() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        let v = Tensor::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = Tensor::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(t.sum_cols().as_slice(), &[3.0, 7.0]);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.argmax_row(1), 1);
    }

    #[test]
    fn argmax_ties_take_first() {
        let t = Tensor::from_rows(&[&[5.0, 5.0, 1.0]]);
        assert_eq!(t.argmax_row(0), 0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_rows(&[&[1.0, 1.0]]);
        let g = Tensor::from_rows(&[&[2.0, 4.0]]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
        a.scale(3.0);
        assert_eq!(a.as_slice(), &[0.0, -3.0]);
    }

    #[test]
    fn broadcast_bias() {
        let mut x = Tensor::zeros(2, 3);
        let b = Tensor::row_vector(&[1.0, 2.0, 3.0]);
        x.add_row_broadcast(&b);
        assert_eq!(x.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(x.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn clip_limits_magnitude() {
        let mut t = Tensor::from_rows(&[&[-10.0, 0.5, 10.0]]);
        t.clip_inplace(1.0);
        assert_eq!(t.as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(1, 2);
        assert!(!t.has_non_finite());
        t.set(0, 1, f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn slice_rows_copies_range() {
        let t = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn operator_overloads() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
    }
}
