//! Pluggable device backends for the dense f32 kernels.
//!
//! Every matmul in the workspace is described by a [`MatmulDesc`] — a
//! cudnn-style op descriptor carrying the problem shape and operand
//! orientation — and executed by a [`Backend`]: an implementation of the
//! kernel set for one device or instruction family. Two backends are
//! registered today:
//!
//! * `scalar` — the portable register-tiled kernels in [`crate::matmul`],
//!   compiled for whatever the build targets (the reference backend);
//! * `simd` — hand-scheduled AVX2/AVX-512 kernels (`crate::simd`),
//!   selected by runtime feature detection.
//!
//! A backend picks a concrete [`MatmulAlgo`] per descriptor (per-shape
//! algorithm selection, like cudnn's `ConvolutionFwdAlgo` enums): wide
//! shapes go to the widest vector kernel the CPU offers, degenerate shapes
//! fall back to the scalar kernels where vector width cannot pay. The
//! chosen backend and algorithm are recorded in `tensor.backend.*` trace
//! counters.
//!
//! # Determinism contract
//!
//! **Backend choice never changes results.** Every backend must reproduce
//! the reference accumulation order bit for bit:
//!
//! * `a_b` / `at_b`: each output element is a single mul-then-add chain
//!   over the shared dimension in ascending order, and factors where the
//!   `A` operand is exactly `0.0` contribute nothing (they are skipped,
//!   not multiplied — observable through signed zeros and non-finite `B`
//!   values);
//! * `a_bt`: the eight-lane unrolled dot of [`crate::matmul`] with its
//!   fixed reduction tree, plus an ascending scalar tail.
//!
//! No backend may use FMA contraction (it fuses the mul+add rounding) or
//! reassociate sums. Combined with the row-tiled `drive` scheduler —
//! whose tile → output mapping depends only on the shape — results are
//! bit-identical across backends × thread counts, which
//! `tests/backend_conformance.rs` enforces for every registered backend.
//! No new kernel can land without passing that harness.
//!
//! # Selection
//!
//! The process-wide backend is resolved once from the `TENSOR_BACKEND`
//! environment variable (`scalar`, `simd`, or `auto`/unset for the best
//! supported backend). Forcing a backend the CPU cannot run — or a name
//! that does not exist — falls back to `scalar` with a stderr warning and
//! a `tensor.backend.forced_fallbacks` counter tick, never a panic.
//! Tests and benches can pin a backend for a closure with
//! [`with_backend`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use trace::Counter;

use crate::pool;
use crate::simd::SimdBackend;
use crate::Tensor;

/// Ops dispatched through the scalar backend.
static OPS_SCALAR: Counter = Counter::new("tensor.backend.ops.scalar");
/// Ops dispatched through the SIMD backend.
static OPS_SIMD: Counter = Counter::new("tensor.backend.ops.simd");
/// Times a forced-but-unusable `TENSOR_BACKEND` value fell back to scalar.
static FORCED_FALLBACKS: Counter = Counter::new("tensor.backend.forced_fallbacks");
/// Per-algorithm dispatch counts (per-shape selection observability).
static ALGO_SCALAR_REG_TILE: Counter = Counter::new("tensor.backend.algo.scalar_reg_tile");
static ALGO_SCALAR_STREAM: Counter = Counter::new("tensor.backend.algo.scalar_stream");
static ALGO_SCALAR_ROW_DOT: Counter = Counter::new("tensor.backend.algo.scalar_row_dot");
static ALGO_SIMD_BROADCAST256: Counter = Counter::new("tensor.backend.algo.simd_broadcast256");
static ALGO_SIMD_BROADCAST512: Counter = Counter::new("tensor.backend.algo.simd_broadcast512");
static ALGO_SIMD_ROW_DOT256: Counter = Counter::new("tensor.backend.algo.simd_row_dot256");
static ALGO_QUANT_PORTABLE: Counter = Counter::new("tensor.backend.algo.quant_portable");
static ALGO_QUANT_VNNI: Counter = Counter::new("tensor.backend.algo.quant_vnni");

/// Minimum number of multiply-adds (`m · n · k`) before a kernel consults
/// the thread pool. Below this, tiling overhead beats any speedup and the
/// small-tensor unit tests stay on the fast sequential path.
pub(crate) const PAR_THRESHOLD: usize = 1 << 16;

/// How a kernel invocation is scheduled.
#[derive(Clone, Copy)]
pub(crate) enum Exec {
    /// Sequential below [`PAR_THRESHOLD`], global pool above it.
    Auto,
    /// Exactly this many scoped threads, regardless of problem size.
    Threads(usize),
}

/// Which product a [`MatmulDesc`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulOp {
    /// `C = A · B` (`A: m × k`, `B: k × n`).
    AB,
    /// `C = Aᵀ · B` (`A: k × m` stored, `B: k × n`).
    AtB,
    /// `C = A · Bᵀ` (`A: m × k`, `B: n × k` stored).
    ABt,
}

/// A cudnn-style matmul descriptor: output shape `m × n`, shared dimension
/// `k`, and which operands are read in transposed orientation.
///
/// The operand slices passed alongside a descriptor are always in their
/// *stored* layout — `transpose_a`/`transpose_b` describe how the kernel
/// reads them, exactly like the `trans_a`/`trans_b` flags of a BLAS GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulDesc {
    /// Output rows.
    pub m: usize,
    /// Shared (contraction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Read `A` as `k × m` stored (i.e. compute `Aᵀ · B`).
    pub transpose_a: bool,
    /// Read `B` as `n × k` stored (i.e. compute `A · Bᵀ`).
    pub transpose_b: bool,
}

impl MatmulDesc {
    /// Descriptor for `C = A · B`.
    pub fn a_b(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            transpose_a: false,
            transpose_b: false,
        }
    }

    /// Descriptor for `C = Aᵀ · B` (`A` stored `k × m`).
    pub fn at_b(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            transpose_a: true,
            transpose_b: false,
        }
    }

    /// Descriptor for `C = A · Bᵀ` (`B` stored `n × k`).
    pub fn a_bt(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            transpose_a: false,
            transpose_b: true,
        }
    }

    /// The product this descriptor describes.
    ///
    /// # Panics
    ///
    /// Panics if both transpose flags are set: `Aᵀ · Bᵀ` is provided by no
    /// registered backend (compute `(B · A)ᵀ` instead).
    pub fn op(&self) -> MatmulOp {
        match (self.transpose_a, self.transpose_b) {
            (false, false) => MatmulOp::AB,
            (true, false) => MatmulOp::AtB,
            (false, true) => MatmulOp::ABt,
            (true, true) => panic!(
                "MatmulDesc with transpose_a && transpose_b is supported by no backend \
                 (compute (B·A)ᵀ instead)"
            ),
        }
    }

    /// Total multiply-adds of the product (saturating).
    pub fn mul_adds(&self) -> usize {
        self.m.saturating_mul(self.k).saturating_mul(self.n)
    }

    /// Expected element counts of `(a, b, out)` in stored layout.
    fn expected_lens(&self) -> (usize, usize, usize) {
        (self.m * self.k, self.k * self.n, self.m * self.n)
    }
}

/// A concrete kernel choice for one descriptor — the unit of per-shape
/// algorithm selection, named like cudnn's algo enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatmulAlgo {
    /// Portable `a_b` kernel: 4 × 32 register tile + streaming row panel.
    ScalarRegTile,
    /// Portable `at_b` kernel: shared-dimension-outer streaming loop.
    ScalarStream,
    /// Portable `a_bt` kernel: eight-lane unrolled row dot.
    ScalarRowDot,
    /// AVX2 broadcast-A kernel, 8-wide over output columns (`a_b`/`at_b`).
    SimdBroadcast256,
    /// AVX-512 broadcast-A kernel, 16-wide over output columns.
    SimdBroadcast512,
    /// AVX2 row-dot kernel (`a_bt`), four output dots in flight, each
    /// reproducing the scalar eight-lane reduction tree.
    SimdRowDot256,
    /// Portable u8 × i8 int8 kernel (exact integer accumulation).
    QuantPortable,
    /// AVX-512 VNNI `vpdpbusd` int8 kernel over the packed weight layout.
    QuantVnni,
}

impl MatmulAlgo {
    /// Stable snake_case name (trace counter suffix).
    pub fn name(&self) -> &'static str {
        match self {
            MatmulAlgo::ScalarRegTile => "scalar_reg_tile",
            MatmulAlgo::ScalarStream => "scalar_stream",
            MatmulAlgo::ScalarRowDot => "scalar_row_dot",
            MatmulAlgo::SimdBroadcast256 => "simd_broadcast256",
            MatmulAlgo::SimdBroadcast512 => "simd_broadcast512",
            MatmulAlgo::SimdRowDot256 => "simd_row_dot256",
            MatmulAlgo::QuantPortable => "quant_portable",
            MatmulAlgo::QuantVnni => "quant_vnni",
        }
    }
}

/// One device/instruction-family implementation of the kernel set.
///
/// Implementations must uphold the module-level determinism contract:
/// for any descriptor and tile split, the output bits must equal the
/// scalar reference. Register new backends in [`all`] and run
/// `tests/backend_conformance.rs` — the harness is the gate.
pub trait Backend: Sync {
    /// Stable lowercase name used by `TENSOR_BACKEND` and trace output.
    fn name(&self) -> &'static str;

    /// Whether this process can run the backend (runtime detection).
    fn supported(&self) -> bool;

    /// Per-shape algorithm selection for an f32 product.
    fn select(&self, desc: &MatmulDesc) -> MatmulAlgo;

    /// Per-shape algorithm selection for the int8 product `A · W`.
    /// `packed` reports whether the weight carries the VNNI-blocked
    /// layout this CPU can run.
    fn select_quant(&self, desc: &MatmulDesc, packed: bool) -> MatmulAlgo {
        let _ = (desc, packed);
        MatmulAlgo::QuantPortable
    }

    /// Computes output rows `lo..hi` (`rows` is that slice of the output)
    /// for the descriptor with the selected algorithm. Called from pool
    /// workers; must be thread-safe and must not touch rows outside
    /// `lo..hi`.
    #[allow(clippy::too_many_arguments)]
    fn matmul_tile(
        &self,
        desc: &MatmulDesc,
        algo: MatmulAlgo,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    );

    /// Row-wise softmax over `data` (`rows × cols`, row-major), in place.
    ///
    /// The default is the shared reference implementation; overriding
    /// backends must stay bit-identical to it (`exp` must remain the libm
    /// call — the serving path pins f32 results to the training graph).
    fn softmax_rows_in_place(&self, cols: usize, data: &mut [f32]) {
        crate::ops::softmax_rows_reference(cols, data);
    }

    /// Row-wise log-softmax over `data` (`rows × cols`), in place. Same
    /// bit-identity requirement as
    /// [`softmax_rows_in_place`](Self::softmax_rows_in_place).
    fn log_softmax_rows_in_place(&self, cols: usize, data: &mut [f32]) {
        crate::ops::log_softmax_rows_reference(cols, data);
    }
}

/// The portable reference backend (always supported).
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn supported(&self) -> bool {
        true
    }

    fn select(&self, desc: &MatmulDesc) -> MatmulAlgo {
        match desc.op() {
            MatmulOp::AB => MatmulAlgo::ScalarRegTile,
            MatmulOp::AtB => MatmulAlgo::ScalarStream,
            MatmulOp::ABt => MatmulAlgo::ScalarRowDot,
        }
    }

    fn matmul_tile(
        &self,
        desc: &MatmulDesc,
        algo: MatmulAlgo,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        rows: &mut [f32],
    ) {
        scalar_tile(desc, algo, a, b, lo, hi, rows);
    }
}

/// Dispatches a tile to the scalar kernels in [`crate::matmul`]. Shared
/// with the SIMD backend, which routes shapes too narrow for its vector
/// width here.
pub(crate) fn scalar_tile(
    desc: &MatmulDesc,
    algo: MatmulAlgo,
    a: &[f32],
    b: &[f32],
    lo: usize,
    hi: usize,
    rows: &mut [f32],
) {
    match algo {
        MatmulAlgo::ScalarRegTile => crate::matmul::a_b_tile(desc, a, b, lo, hi, rows),
        MatmulAlgo::ScalarStream => crate::matmul::at_b_tile(desc, a, b, lo, hi, rows),
        MatmulAlgo::ScalarRowDot => crate::matmul::a_bt_tile(desc, a, b, lo, hi, rows),
        other => panic!("scalar kernels cannot run algo {other:?}"),
    }
}

static SCALAR: ScalarBackend = ScalarBackend;
static SIMD: SimdBackend = SimdBackend;

/// Every registered backend, `scalar` first. Backends appear here whether
/// or not the running CPU supports them — check [`Backend::supported`]
/// (the conformance harness iterates this list and skips unsupported
/// entries; [`resolve`] refuses to activate them).
pub fn all() -> [&'static dyn Backend; 2] {
    [&SCALAR, &SIMD]
}

/// The always-available reference backend.
pub fn scalar() -> &'static dyn Backend {
    &SCALAR
}

/// Outcome of resolving a requested backend name.
pub struct Resolution {
    /// The backend that will run.
    pub backend: &'static dyn Backend,
    /// Why the request could not be honoured (falls back to `scalar`),
    /// `None` when the request (or auto-selection) was satisfied.
    pub fallback: Option<String>,
}

/// Resolves a requested backend name (`TENSOR_BACKEND` semantics, pure of
/// environment so tests can drive it): `None`, empty, or `auto` selects
/// the best supported backend; a known, supported name selects it; an
/// unknown or unsupported name falls back to `scalar` with a reason and a
/// `tensor.backend.forced_fallbacks` counter tick — never a panic.
pub fn resolve(requested: Option<&str>) -> Resolution {
    let requested = requested.map(|r| r.trim().to_ascii_lowercase());
    match requested.as_deref() {
        None | Some("") | Some("auto") => Resolution {
            backend: all()
                .into_iter()
                .rev() // prefer the most specialised supported backend
                .find(|b| b.supported())
                .unwrap_or(&SCALAR),
            fallback: None,
        },
        Some(name) => match all().into_iter().find(|b| b.name() == name) {
            Some(b) if b.supported() => Resolution {
                backend: b,
                fallback: None,
            },
            Some(_) => {
                FORCED_FALLBACKS.incr();
                Resolution {
                    backend: &SCALAR,
                    fallback: Some(format!("backend '{name}' is not supported on this CPU")),
                }
            }
            None => {
                FORCED_FALLBACKS.incr();
                Resolution {
                    backend: &SCALAR,
                    fallback: Some(format!("unknown backend '{name}'")),
                }
            }
        },
    }
}

/// The process-wide backend: `TENSOR_BACKEND` resolved once and cached.
pub fn active() -> &'static dyn Backend {
    static ACTIVE: OnceLock<&'static dyn Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let requested = std::env::var("TENSOR_BACKEND").ok();
        let resolution = resolve(requested.as_deref());
        if let Some(reason) = &resolution.fallback {
            eprintln!("tensor: TENSOR_BACKEND fallback: {reason}; using 'scalar'");
        }
        resolution.backend
    })
}

/// Test/bench override slot: `usize::MAX` means "no override", otherwise
/// an index into [`all`].
static FORCED: AtomicUsize = AtomicUsize::new(usize::MAX);
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// The backend ops dispatch through right now: the [`with_backend`]
/// override if one is active, otherwise [`active`].
pub(crate) fn current() -> &'static dyn Backend {
    let forced = FORCED.load(Ordering::Relaxed);
    if forced != usize::MAX {
        return all()[forced];
    }
    active()
}

/// Runs `f` with every tensor op pinned to the named backend, then
/// restores the previous selection — the hook tests and benches use to
/// compare backends inside one process (`TENSOR_BACKEND` is read once).
///
/// Calls are serialised on a process-wide lock; since backends are
/// bit-identical by contract, concurrent ops on *other* threads observing
/// the override stay correct — only their speed changes.
///
/// # Panics
///
/// Panics if the name is unknown or the backend is unsupported on this
/// CPU (use [`resolve`] for the fallback-to-scalar semantics).
pub fn with_backend<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let name = name.trim().to_ascii_lowercase();
    let idx = all()
        .iter()
        .position(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown tensor backend '{name}'"));
    assert!(
        all()[idx].supported(),
        "tensor backend '{name}' is not supported on this CPU"
    );
    let _serialise = FORCE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.store(usize::MAX, Ordering::Relaxed);
        }
    }
    let _restore = Restore;
    FORCED.store(idx, Ordering::Relaxed);
    f()
}

fn record_backend(backend: &'static dyn Backend) {
    match backend.name() {
        "simd" => OPS_SIMD.incr(),
        _ => OPS_SCALAR.incr(),
    }
}

pub(crate) fn record_algo(algo: MatmulAlgo) {
    match algo {
        MatmulAlgo::ScalarRegTile => ALGO_SCALAR_REG_TILE.incr(),
        MatmulAlgo::ScalarStream => ALGO_SCALAR_STREAM.incr(),
        MatmulAlgo::ScalarRowDot => ALGO_SCALAR_ROW_DOT.incr(),
        MatmulAlgo::SimdBroadcast256 => ALGO_SIMD_BROADCAST256.incr(),
        MatmulAlgo::SimdBroadcast512 => ALGO_SIMD_BROADCAST512.incr(),
        MatmulAlgo::SimdRowDot256 => ALGO_SIMD_ROW_DOT256.incr(),
        MatmulAlgo::QuantPortable => ALGO_QUANT_PORTABLE.incr(),
        MatmulAlgo::QuantVnni => ALGO_QUANT_VNNI.incr(),
    }
}

/// Selects the int8 algorithm for the current backend and records the
/// dispatch (the int8 kernels in [`crate::quant`] share the descriptor
/// API and driver but keep their own kernel bodies — their inputs are
/// quantized, not `f32` slices).
pub(crate) fn select_quant_recorded(desc: &MatmulDesc, packed: bool) -> MatmulAlgo {
    let backend = current();
    let algo = backend.select_quant(desc, packed);
    record_backend(backend);
    record_algo(algo);
    algo
}

/// Validates the descriptor against the operand buffers, selects backend
/// and algorithm, records both, and drives the tiled kernel.
pub(crate) fn execute(desc: &MatmulDesc, a: &[f32], b: &[f32], out: &mut Tensor, exec: Exec) {
    let op = desc.op(); // rejects the double-transpose descriptor
    let (a_len, b_len, out_len) = desc.expected_lens();
    debug_assert_eq!(a.len(), a_len, "{op:?}: A buffer does not match descriptor");
    debug_assert_eq!(b.len(), b_len, "{op:?}: B buffer does not match descriptor");
    debug_assert_eq!(
        out.len(),
        out_len,
        "{op:?}: out buffer does not match descriptor"
    );
    let backend = current();
    let algo = backend.select(desc);
    record_backend(backend);
    record_algo(algo);
    drive(exec, desc.m, desc.n, desc.k, out, &|lo, hi, rows| {
        backend.matmul_tile(desc, algo, a, b, lo, hi, rows)
    });
}

/// Raw output pointer smuggled into tile tasks. Sound because tiles write
/// disjoint row ranges of the same allocation.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Contiguous row range `[lo, hi)` of tile `t` out of `tiles` over `m`
/// rows: the first `m % tiles` tiles get one extra row. Depends only on
/// the problem shape, never on scheduling.
fn tile_bounds(m: usize, tiles: usize, t: usize) -> (usize, usize) {
    let base = m / tiles;
    let rem = m % tiles;
    let lo = t * base + t.min(rem);
    (lo, lo + base + usize::from(t < rem))
}

/// Runs `tile_body(lo, hi, rows)` over a row-tiling of the `m × n` output,
/// where `rows` is the output slice for rows `lo..hi`. Shared by every
/// backend and by the int8 kernels in [`crate::quant`], which therefore
/// all inherit the same tiling and the same determinism contract.
pub(crate) fn drive(
    exec: Exec,
    m: usize,
    n: usize,
    k: usize,
    out: &mut Tensor,
    tile_body: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) {
    let threads = match exec {
        Exec::Auto => {
            if m.saturating_mul(n).saturating_mul(k) >= PAR_THRESHOLD {
                pool::num_threads()
            } else {
                1
            }
        }
        Exec::Threads(t) => t.max(1),
    };
    let threads = threads.min(m.max(1));
    if threads <= 1 {
        pool::count_inline(1);
        tile_body(0, m, out.as_mut_slice());
        return;
    }
    // Over-split in pool mode so dynamic claiming can balance load; the
    // explicit mode keeps one tile per thread so "2 threads" is literal.
    let tiles = match exec {
        Exec::Auto => (threads * 4).min(m),
        Exec::Threads(_) => threads,
    };
    let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
    let task = move |t: usize| {
        let ptr = ptr; // capture the Sync wrapper, not the raw pointer field
        let (lo, hi) = tile_bounds(m, tiles, t);
        // Safety: tiles own disjoint row ranges, so the views never alias,
        // and `drive` does not return until every tile has completed.
        let rows = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(lo * n), (hi - lo) * n) };
        tile_body(lo, hi, rows);
    };
    match exec {
        Exec::Auto => pool::global().run(tiles, &task),
        Exec::Threads(t) => pool::run_scoped(t, tiles, &task),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_bounds_cover_rows_exactly_once() {
        for m in [1usize, 2, 7, 16, 33] {
            for tiles in 1..=m {
                let mut next = 0;
                for t in 0..tiles {
                    let (lo, hi) = tile_bounds(m, tiles, t);
                    assert_eq!(lo, next, "m={m} tiles={tiles} t={t}");
                    assert!(hi > lo);
                    next = hi;
                }
                assert_eq!(next, m);
            }
        }
    }

    #[test]
    fn descriptor_constructors_report_ops() {
        assert_eq!(MatmulDesc::a_b(2, 3, 4).op(), MatmulOp::AB);
        assert_eq!(MatmulDesc::at_b(2, 3, 4).op(), MatmulOp::AtB);
        assert_eq!(MatmulDesc::a_bt(2, 3, 4).op(), MatmulOp::ABt);
        assert_eq!(MatmulDesc::a_b(2, 3, 4).mul_adds(), 24);
    }

    #[test]
    #[should_panic(expected = "transpose_a && transpose_b")]
    fn double_transpose_descriptor_is_rejected() {
        let desc = MatmulDesc {
            m: 2,
            k: 2,
            n: 2,
            transpose_a: true,
            transpose_b: true,
        };
        let _ = desc.op();
    }

    #[test]
    fn resolve_handles_auto_known_and_bogus_names() {
        assert!(resolve(None).fallback.is_none());
        assert_eq!(resolve(Some("scalar")).backend.name(), "scalar");
        assert_eq!(resolve(Some(" Scalar ")).backend.name(), "scalar");
        let bogus = resolve(Some("metal"));
        assert_eq!(bogus.backend.name(), "scalar");
        assert!(bogus.fallback.expect("must fall back").contains("metal"));
        let auto = resolve(Some("auto"));
        assert!(auto.backend.supported());
    }

    #[test]
    fn with_backend_restores_previous_selection() {
        let before = current().name();
        let inside = with_backend("scalar", || current().name());
        assert_eq!(inside, "scalar");
        assert_eq!(current().name(), before);
    }

    #[test]
    #[should_panic(expected = "unknown tensor backend")]
    fn with_backend_rejects_unknown_names() {
        with_backend("cuda", || ());
    }
}
