//! Random weight initialisation.
//!
//! All initialisers take an explicit RNG so every experiment in the
//! reproduction is deterministic per seed.

use rand::distributions::Distribution;
use rand::Rng;

use crate::Tensor;

/// Weight-initialisation schemes used by the neural models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros (biases).
    Zeros,
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Normal with mean 0 and the given standard deviation.
    Normal(f32),
    /// Xavier/Glorot uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Xavier/Glorot normal: `sigma = sqrt(2 / (fan_in + fan_out))`.
    XavierNormal,
}

impl Initializer {
    /// Creates an initialised `rows × cols` tensor. For the Xavier schemes
    /// `rows` is treated as fan-in and `cols` as fan-out.
    pub fn init(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
        match self {
            Initializer::Zeros => Tensor::zeros(rows, cols),
            Initializer::Uniform(a) => uniform(rows, cols, a, rng),
            Initializer::Normal(sigma) => normal(rows, cols, sigma, rng),
            Initializer::XavierUniform => xavier_uniform(rows, cols, rng),
            Initializer::XavierNormal => xavier_normal(rows, cols, rng),
        }
    }
}

fn uniform(rows: usize, cols: usize, a: f32, rng: &mut impl Rng) -> Tensor {
    assert!(a >= 0.0, "uniform bound must be non-negative");
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(rows, cols, data)
}

fn normal(rows: usize, cols: usize, sigma: f32, rng: &mut impl Rng) -> Tensor {
    // Box-Muller transform; rand's `Standard` on f32 gives [0, 1).
    let dist = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
    let data = (0..rows * cols)
        .map(|_| {
            let u1: f32 = dist.sample(rng);
            let u2: f32 = dist.sample(rng);
            sigma * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialisation for a `fan_in × fan_out` matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, a, rng)
}

/// Xavier/Glorot normal initialisation for a `fan_in × fan_out` matrix.
pub fn xavier_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let sigma = (2.0 / (fan_in + fan_out) as f32).sqrt();
    normal(fan_in, fan_out, sigma, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let a = Initializer::XavierUniform.init(4, 4, &mut StdRng::seed_from_u64(7));
        let b = Initializer::XavierUniform.init(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = Initializer::XavierUniform.init(4, 4, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(100, 100, &mut rng);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Initializer::Normal(0.5).init(200, 200, &mut rng);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn zeros_initializer() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Initializer::Zeros.init(3, 3, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }
}
