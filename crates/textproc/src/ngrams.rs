//! N-gram augmentation for bag-of-features models.
//!
//! TF-IDF destroys token order; appending order-preserving n-gram tokens
//! (`"stir→heat"`) to each document restores *local* order information to
//! the statistical models. The reproduction uses this for the ablation
//! that asks how much of the transformers' advantage is local ordering a
//! bag model could recover.

/// Joins adjacent tokens into n-gram tokens with the `→` separator.
///
/// # Examples
///
/// ```
/// use textproc::ngram_tokens;
///
/// let doc = ["stir", "heat", "serve"];
/// assert_eq!(
///     ngram_tokens(&doc, 2),
///     vec!["stir→heat".to_string(), "heat→serve".to_string()]
/// );
/// assert!(ngram_tokens(&doc, 4).is_empty());
/// ```
pub fn ngram_tokens<S: AsRef<str>>(tokens: &[S], n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram order must be at least 1");
    if tokens.len() < n {
        return Vec::new();
    }
    tokens
        .windows(n)
        .map(|w| {
            let parts: Vec<&str> = w.iter().map(AsRef::as_ref).collect();
            parts.join("→")
        })
        .collect()
}

/// Augments a document with all n-gram orders in `1..=max_n`: the original
/// unigrams followed by bigrams, trigrams, … as additional tokens.
pub fn with_ngrams<S: AsRef<str>>(tokens: &[S], max_n: usize) -> Vec<String> {
    assert!(max_n >= 1, "max n-gram order must be at least 1");
    let mut out: Vec<String> = tokens.iter().map(|t| t.as_ref().to_string()).collect();
    for n in 2..=max_n {
        out.extend(ngram_tokens(tokens, n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigrams_are_identity() {
        let doc = ["a", "b"];
        assert_eq!(ngram_tokens(&doc, 1), vec!["a", "b"]);
        assert_eq!(with_ngrams(&doc, 1), vec!["a", "b"]);
    }

    #[test]
    fn bigrams_preserve_order() {
        let ab = ngram_tokens(&["a", "b"], 2);
        let ba = ngram_tokens(&["b", "a"], 2);
        assert_ne!(ab, ba, "bigrams must be order-sensitive");
    }

    #[test]
    fn augmented_doc_contains_both_levels() {
        let doc = with_ngrams(&["x", "y", "z"], 2);
        assert_eq!(doc, vec!["x", "y", "z", "x→y", "y→z"]);
    }

    #[test]
    fn trigram_augmentation() {
        let doc = with_ngrams(&["a", "b", "c"], 3);
        assert!(doc.contains(&"a→b→c".to_string()));
        assert_eq!(doc.len(), 3 + 2 + 1);
    }

    #[test]
    fn short_docs_are_safe() {
        assert!(ngram_tokens(&[] as &[&str], 2).is_empty());
        assert_eq!(with_ngrams(&["solo"], 3), vec!["solo"]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_order_rejected() {
        let _ = ngram_tokens(&["a"], 0);
    }
}
