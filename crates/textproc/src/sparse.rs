//! Compressed sparse row (CSR) matrices.
//!
//! RecipeDB's document-term matrix is 99.5% sparse (118k documents over a
//! 20.4k vocabulary with ~20 distinct terms each), so every statistical
//! model in the `ml` crate trains directly on this CSR representation —
//! a dense matrix would be ~9 GiB.

/// An immutable CSR matrix of `f32` values.
///
/// Invariants (enforced by [`CsrBuilder`] and checked in debug builds):
/// `indptr` has `rows + 1` monotone entries; within each row the column
/// `indices` are strictly increasing and `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f32>,
}

impl CsrMatrix {
    /// Number of rows (documents).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (vocabulary size).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (explicit) entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Fraction of *zero* cells: `1 - nnz / (rows * cols)`.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows as f64 * self.cols as f64;
        if total == 0.0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total
    }

    /// One row as parallel `(column_indices, values)` slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &self.data[span])
    }

    /// Iterator over `(row, col, value)` of all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (idx, vals) = self.row(r);
            idx.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Dot product of row `r` with a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != cols`.
    pub fn row_dot(&self, r: usize, dense: &[f32]) -> f32 {
        assert_eq!(dense.len(), self.cols, "dense vector length mismatch");
        let (idx, vals) = self.row(r);
        idx.iter()
            .zip(vals)
            .map(|(&c, &v)| v * dense[c as usize])
            .sum()
    }

    /// `acc += alpha * row_r` scattered into a dense accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != cols`.
    pub fn row_axpy(&self, r: usize, alpha: f32, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.cols, "accumulator length mismatch");
        let (idx, vals) = self.row(r);
        for (&c, &v) in idx.iter().zip(vals) {
            acc[c as usize] += alpha * v;
        }
    }

    /// L2 norm of one row.
    pub fn row_norm(&self, r: usize) -> f32 {
        let (_, vals) = self.row(r);
        vals.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Extracts the sub-matrix of the given rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.cols);
        for &r in rows {
            let (idx, vals) = self.row(r);
            b.push_sorted_row(idx.iter().map(|&c| c as usize).zip(vals.iter().copied()));
        }
        b.build()
    }

    /// Densifies one row (for debugging and tests).
    pub fn row_dense(&self, r: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        let (idx, vals) = self.row(r);
        for (&c, &v) in idx.iter().zip(vals) {
            out[c as usize] = v;
        }
        out
    }
}

/// Incremental row-major CSR builder.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f32>,
}

impl CsrBuilder {
    /// Starts an empty matrix with a fixed column count.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            indptr: vec![0],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Appends a row given `(col, value)` pairs in strictly increasing
    /// column order. Zero values are dropped.
    ///
    /// # Panics
    ///
    /// Panics if columns are out of range or not strictly increasing.
    pub fn push_sorted_row(&mut self, entries: impl IntoIterator<Item = (usize, f32)>) {
        let mut last: Option<usize> = None;
        for (c, v) in entries {
            assert!(c < self.cols, "column {c} out of range {}", self.cols);
            if let Some(prev) = last {
                assert!(
                    c > prev,
                    "columns must be strictly increasing ({prev} then {c})"
                );
            }
            last = Some(c);
            if v != 0.0 {
                self.indices.push(c as u32);
                self.data.push(v);
            }
        }
        self.indptr.push(self.indices.len());
    }

    /// Appends a row from unsorted `(col, value)` pairs, sorting and
    /// summing duplicates.
    pub fn push_unsorted_row(&mut self, entries: impl IntoIterator<Item = (usize, f32)>) {
        let mut pairs: Vec<(usize, f32)> = entries.into_iter().collect();
        pairs.sort_unstable_by_key(|&(c, _)| c);
        let mut merged: Vec<(usize, f32)> = Vec::with_capacity(pairs.len());
        for (c, v) in pairs {
            match merged.last_mut() {
                Some((lc, lv)) if *lc == c => *lv += v,
                _ => merged.push((c, v)),
            }
        }
        self.push_sorted_row(merged);
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Finalizes the matrix.
    pub fn build(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut b = CsrBuilder::new(4);
        b.push_sorted_row([(0, 1.0), (2, 2.0)]);
        b.push_sorted_row([]);
        b.push_sorted_row([(1, -1.0), (3, 0.5)]);
        b.build()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 4);
        assert!((m.sparsity() - (1.0 - 4.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn row_access() {
        let m = sample();
        let (idx, vals) = m.row(0);
        assert_eq!(idx, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (idx, _) = m.row(1);
        assert!(idx.is_empty());
    }

    #[test]
    fn zero_values_dropped() {
        let mut b = CsrBuilder::new(3);
        b.push_sorted_row([(0, 0.0), (1, 5.0), (2, 0.0)]);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row_dense(0), vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn row_dot_matches_dense() {
        let m = sample();
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.row_dot(0, &v), 1.0 + 6.0);
        assert_eq!(m.row_dot(1, &v), 0.0);
        assert_eq!(m.row_dot(2, &v), -2.0 + 2.0);
    }

    #[test]
    fn row_axpy_scatters() {
        let m = sample();
        let mut acc = vec![0.0; 4];
        m.row_axpy(0, 2.0, &mut acc);
        assert_eq!(acc, vec![2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn unsorted_rows_merge_duplicates() {
        let mut b = CsrBuilder::new(5);
        b.push_unsorted_row([(3, 1.0), (1, 2.0), (3, 0.5)]);
        let m = b.build();
        assert_eq!(m.row_dense(0), vec![0.0, 2.0, 0.0, 1.5, 0.0]);
    }

    #[test]
    fn select_rows_reorders() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row_dense(0), m.row_dense(2));
        assert_eq!(s.row_dense(1), m.row_dense(0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_push_sorted_panics() {
        let mut b = CsrBuilder::new(4);
        b.push_sorted_row([(2, 1.0), (1, 1.0)]);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0], (0, 0, 1.0));
        assert_eq!(entries[3], (2, 3, 0.5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn rows_strategy() -> impl Strategy<Value = Vec<Vec<(usize, f32)>>> {
        proptest::collection::vec(
            proptest::collection::vec((0usize..20, -5.0f32..5.0), 0..10),
            1..12,
        )
    }

    proptest! {
        #[test]
        fn dense_roundtrip(rows in rows_strategy()) {
            let mut b = CsrBuilder::new(20);
            let mut dense: Vec<Vec<f32>> = Vec::new();
            for row in &rows {
                b.push_unsorted_row(row.iter().copied());
                let mut d = vec![0.0f32; 20];
                for &(c, v) in row {
                    d[c] += v;
                }
                dense.push(d);
            }
            let m = b.build();
            prop_assert_eq!(m.rows(), rows.len());
            for (r, d) in dense.iter().enumerate() {
                let got = m.row_dense(r);
                for (a, b) in got.iter().zip(d) {
                    prop_assert!((a - b).abs() < 1e-4);
                }
            }
        }

        #[test]
        fn row_dot_agrees_with_dense_dot(rows in rows_strategy(), seed in 0u64..50) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let dense_vec: Vec<f32> = (0..20).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut b = CsrBuilder::new(20);
            for row in &rows {
                b.push_unsorted_row(row.iter().copied());
            }
            let m = b.build();
            for r in 0..m.rows() {
                let expected: f32 = m.row_dense(r).iter().zip(&dense_vec).map(|(a, b)| a * b).sum();
                prop_assert!((m.row_dot(r, &dense_vec) - expected).abs() < 1e-3);
            }
        }
    }
}
