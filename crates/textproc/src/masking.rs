//! Masked-language-model corruption for transformer pre-training.
//!
//! Implements the BERT recipe: select 15% of content positions; of those,
//! 80% become `[MASK]`, 10% a random vocabulary token, 10% stay unchanged.
//! The BERT/RoBERTa distinction the paper leans on is reproduced through
//! *when* masks are drawn:
//!
//! * [`MaskingStrategy::Static`] — masks are a pure function of
//!   `(seed, sequence index)`, so every epoch sees identical corruption
//!   (BERT's preprocessing-time masking);
//! * [`MaskingStrategy::Dynamic`] — masks also hash the epoch, so each
//!   epoch re-corrupts differently (RoBERTa's on-the-fly masking).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::Vocabulary;

/// When mask patterns are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskingStrategy {
    /// Same masks every epoch (BERT).
    Static,
    /// Fresh masks every epoch (RoBERTa).
    Dynamic,
}

/// MLM corruption parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskingConfig {
    /// Fraction of content positions selected for prediction.
    pub mask_prob: f64,
    /// Of selected positions, fraction replaced by `[MASK]`.
    pub replace_with_mask: f64,
    /// Of selected positions, fraction replaced by a random token.
    pub replace_with_random: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Static or dynamic masking.
    pub strategy: MaskingStrategy,
}

impl Default for MaskingConfig {
    fn default() -> Self {
        Self {
            mask_prob: 0.15,
            replace_with_mask: 0.8,
            replace_with_random: 0.1,
            seed: 0,
            strategy: MaskingStrategy::Dynamic,
        }
    }
}

/// One corrupted training example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedExample {
    /// Corrupted input ids (same length as the original).
    pub input: Vec<u32>,
    /// `(position, original_id)` pairs the model must reconstruct.
    pub targets: Vec<(usize, u32)>,
}

/// Applies MLM corruption to one encoded sequence.
///
/// `ids` is the padded id array; only positions `< active_len` that are not
/// special tokens are candidates. `vocab_size` bounds the random-replacement
/// draw (specials are excluded from it). At least one position is always
/// selected when any candidate exists, so every example trains the head.
pub fn mask_sequence(
    ids: &[u32],
    active_len: usize,
    vocab: &Vocabulary,
    config: &MaskingConfig,
    sequence_index: usize,
    epoch: usize,
) -> MaskedExample {
    let epoch_component = match config.strategy {
        MaskingStrategy::Static => 0,
        MaskingStrategy::Dynamic => epoch as u64,
    };
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(sequence_index as u64)
            .wrapping_add(epoch_component.wrapping_mul(0x0100_0000_01B3)),
    );

    let candidates: Vec<usize> = (0..active_len.min(ids.len()))
        .filter(|&i| !vocab.is_special(ids[i]))
        .collect();

    let mut input = ids.to_vec();
    let mut targets = Vec::new();
    for &pos in &candidates {
        if rng.gen::<f64>() >= config.mask_prob {
            continue;
        }
        targets.push((pos, ids[pos]));
        let roll: f64 = rng.gen();
        if roll < config.replace_with_mask {
            input[pos] = Vocabulary::MASK;
        } else if roll < config.replace_with_mask + config.replace_with_random {
            input[pos] = random_content_id(vocab, &mut rng);
        } // else: keep the original token
    }

    // guarantee at least one target
    if targets.is_empty() {
        if let Some(&pos) = candidates.first() {
            targets.push((pos, ids[pos]));
            input[pos] = Vocabulary::MASK;
        }
    }

    MaskedExample { input, targets }
}

fn random_content_id(vocab: &Vocabulary, rng: &mut StdRng) -> u32 {
    let range = vocab.content_ids();
    if range.is_empty() {
        Vocabulary::UNK
    } else {
        rng.gen_range(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::from_tokens((0..100).map(|i| format!("tok{i}")))
    }

    fn sample_ids() -> Vec<u32> {
        // [CLS] 20 content tokens [SEP] [PAD]*2
        let mut ids = vec![Vocabulary::CLS];
        ids.extend(5..25u32);
        ids.push(Vocabulary::SEP);
        ids.extend([Vocabulary::PAD, Vocabulary::PAD]);
        ids
    }

    #[test]
    fn specials_and_padding_never_masked() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig {
            mask_prob: 1.0,
            ..Default::default()
        };
        let ex = mask_sequence(&ids, 22, &v, &cfg, 0, 0);
        assert_eq!(ex.input[0], Vocabulary::CLS);
        assert_eq!(ex.input[21], Vocabulary::SEP);
        assert_eq!(ex.input[22], Vocabulary::PAD);
        assert!(ex.targets.iter().all(|&(p, _)| (1..21).contains(&p)));
    }

    #[test]
    fn full_masking_targets_all_content() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig {
            mask_prob: 1.0,
            replace_with_mask: 1.0,
            replace_with_random: 0.0,
            ..Default::default()
        };
        let ex = mask_sequence(&ids, 22, &v, &cfg, 0, 0);
        assert_eq!(ex.targets.len(), 20);
        assert!(ex.input[1..21].iter().all(|&i| i == Vocabulary::MASK));
    }

    #[test]
    fn targets_store_original_ids() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig {
            mask_prob: 1.0,
            ..Default::default()
        };
        let ex = mask_sequence(&ids, 22, &v, &cfg, 3, 1);
        for &(pos, original) in &ex.targets {
            assert_eq!(original, ids[pos]);
        }
    }

    #[test]
    fn static_masking_identical_across_epochs() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig {
            strategy: MaskingStrategy::Static,
            ..Default::default()
        };
        let e0 = mask_sequence(&ids, 22, &v, &cfg, 7, 0);
        let e5 = mask_sequence(&ids, 22, &v, &cfg, 7, 5);
        assert_eq!(e0, e5);
    }

    #[test]
    fn dynamic_masking_differs_across_epochs() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig {
            strategy: MaskingStrategy::Dynamic,
            ..Default::default()
        };
        let e0 = mask_sequence(&ids, 22, &v, &cfg, 7, 0);
        let e1 = mask_sequence(&ids, 22, &v, &cfg, 7, 1);
        assert_ne!(e0, e1, "dynamic masking must vary per epoch");
    }

    #[test]
    fn different_sequences_get_different_masks() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig::default();
        let a = mask_sequence(&ids, 22, &v, &cfg, 0, 0);
        let b = mask_sequence(&ids, 22, &v, &cfg, 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn at_least_one_target_guaranteed() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig {
            mask_prob: 0.0,
            ..Default::default()
        };
        let ex = mask_sequence(&ids, 22, &v, &cfg, 0, 0);
        assert_eq!(ex.targets.len(), 1);
    }

    #[test]
    fn masking_rate_is_approximately_15_percent() {
        let v = vocab();
        let ids = sample_ids();
        let cfg = MaskingConfig::default();
        let total: usize = (0..500)
            .map(|i| mask_sequence(&ids, 22, &v, &cfg, i, 0).targets.len())
            .sum();
        let rate = total as f64 / (500.0 * 20.0);
        assert!((0.12..0.19).contains(&rate), "masking rate {rate}");
    }
}
