//! Encoding token sequences into fixed-shape id arrays for the neural
//! models: `[CLS] tokens… [SEP]` with truncation and padding.

use crate::vocab::Vocabulary;

/// An encoded sequence: ids padded to a fixed length plus the count of
/// real (non-pad) positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSequence {
    /// Token ids, length == `max_len`.
    pub ids: Vec<u32>,
    /// Number of non-padding positions (including `[CLS]`/`[SEP]`).
    pub len: usize,
}

impl EncodedSequence {
    /// The real (unpadded) id prefix.
    pub fn active(&self) -> &[u32] {
        &self.ids[..self.len]
    }

    /// Attention mask: 1.0 for real positions, 0.0 for padding.
    pub fn attention_mask(&self) -> Vec<f32> {
        (0..self.ids.len())
            .map(|i| if i < self.len { 1.0 } else { 0.0 })
            .collect()
    }
}

/// Turns token sequences into padded id arrays over a [`Vocabulary`].
#[derive(Debug, Clone)]
pub struct SequenceEncoder {
    max_len: usize,
    add_special: bool,
}

impl SequenceEncoder {
    /// Creates an encoder for sequences of exactly `max_len` ids, wrapping
    /// content in `[CLS] … [SEP]` when `add_special` is set.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is too small to hold the special tokens.
    pub fn new(max_len: usize, add_special: bool) -> Self {
        assert!(
            max_len >= if add_special { 3 } else { 1 },
            "max_len too small"
        );
        Self {
            max_len,
            add_special,
        }
    }

    /// Target length of every encoded sequence.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Encodes one token sequence: lookup (OOV → `[UNK]`), truncate to fit,
    /// wrap in specials, pad with `[PAD]`.
    pub fn encode<'a>(
        &self,
        vocab: &Vocabulary,
        tokens: impl IntoIterator<Item = &'a str>,
    ) -> EncodedSequence {
        let budget = if self.add_special {
            self.max_len - 2
        } else {
            self.max_len
        };
        let mut ids = Vec::with_capacity(self.max_len);
        if self.add_special {
            ids.push(Vocabulary::CLS);
        }
        for t in tokens.into_iter().take(budget) {
            ids.push(vocab.lookup_or_unk(t));
        }
        if self.add_special {
            ids.push(Vocabulary::SEP);
        }
        let len = ids.len();
        ids.resize(self.max_len, Vocabulary::PAD);
        EncodedSequence { ids, len }
    }

    /// Encodes pre-mapped ids (already vocabulary indices), with the same
    /// truncate/wrap/pad treatment.
    pub fn encode_ids(&self, content: &[u32]) -> EncodedSequence {
        let budget = if self.add_special {
            self.max_len - 2
        } else {
            self.max_len
        };
        let mut ids = Vec::with_capacity(self.max_len);
        if self.add_special {
            ids.push(Vocabulary::CLS);
        }
        ids.extend(content.iter().take(budget));
        if self.add_special {
            ids.push(Vocabulary::SEP);
        }
        let len = ids.len();
        ids.resize(self.max_len, Vocabulary::PAD);
        EncodedSequence { ids, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::from_tokens(["onion".into(), "stir".into(), "add".into()])
    }

    #[test]
    fn encodes_with_specials() {
        let enc = SequenceEncoder::new(6, true);
        let e = enc.encode(&vocab(), ["onion", "stir"]);
        assert_eq!(e.ids[0], Vocabulary::CLS);
        assert_eq!(e.ids[3], Vocabulary::SEP);
        assert_eq!(e.len, 4);
        assert_eq!(e.ids.len(), 6);
        assert_eq!(e.ids[4], Vocabulary::PAD);
    }

    #[test]
    fn truncates_long_sequences() {
        let enc = SequenceEncoder::new(4, true);
        let e = enc.encode(&vocab(), ["onion", "stir", "add", "onion", "stir"]);
        assert_eq!(e.len, 4);
        assert_eq!(e.ids[3], Vocabulary::SEP, "SEP must survive truncation");
    }

    #[test]
    fn oov_becomes_unk() {
        let enc = SequenceEncoder::new(4, false);
        let e = enc.encode(&vocab(), ["mystery"]);
        assert_eq!(e.ids[0], Vocabulary::UNK);
    }

    #[test]
    fn no_specials_mode() {
        let enc = SequenceEncoder::new(3, false);
        let e = enc.encode(&vocab(), ["onion"]);
        assert_eq!(e.len, 1);
        assert_ne!(e.ids[0], Vocabulary::CLS);
    }

    #[test]
    fn attention_mask_matches_len() {
        let enc = SequenceEncoder::new(5, true);
        let e = enc.encode(&vocab(), ["onion"]);
        assert_eq!(e.attention_mask(), vec![1.0, 1.0, 1.0, 0.0, 0.0]);
        assert_eq!(e.active().len(), 3);
    }

    #[test]
    fn encode_ids_matches_encode() {
        let v = vocab();
        let enc = SequenceEncoder::new(6, true);
        let by_tokens = enc.encode(&v, ["onion", "add"]);
        let raw = [v.id("onion").unwrap(), v.id("add").unwrap()];
        let by_ids = enc.encode_ids(&raw);
        assert_eq!(by_tokens, by_ids);
    }

    #[test]
    #[should_panic(expected = "max_len too small")]
    fn tiny_max_len_panics() {
        let _ = SequenceEncoder::new(2, true);
    }
}
