//! Byte-pair-encoding subword tokenizer.
//!
//! RecipeDB's entity vocabulary has an 11.7k-entity hapax tail that is
//! unavoidably OOV for entity-level models. BERT-family models solve this
//! with subword units; this module implements classic BPE — train merges on
//! a word-frequency table, encode by applying merges greedily in training
//! order — for the open-vocabulary ablation.

use std::collections::HashMap;

/// End-of-word marker appended to every word before merging, so subwords
/// know whether they close a word (`"let</w>"` vs mid-word `"let"`).
const EOW: &str = "</w>";

/// A trained BPE tokenizer.
///
/// # Examples
///
/// ```
/// use textproc::BpeTokenizer;
///
/// let corpus = [("lentil", 10u64), ("lemon", 8), ("melon", 6)];
/// let bpe = BpeTokenizer::train(corpus.iter().map(|&(w, c)| (w, c)), 40);
/// let pieces = bpe.encode("lemon");
/// assert_eq!(pieces.join(""), "lemon</w>");
/// ```
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    merges: HashMap<(String, String), usize>,
    vocab: Vec<String>,
}

impl BpeTokenizer {
    /// Trains merges from `(word, count)` pairs until the symbol vocabulary
    /// reaches `vocab_size` or no pair occurs twice.
    pub fn train<'a>(words: impl IntoIterator<Item = (&'a str, u64)>, vocab_size: usize) -> Self {
        // word → (symbol sequence, count)
        let mut table: Vec<(Vec<String>, u64)> = Vec::new();
        let mut symbols: HashMap<String, ()> = HashMap::new();
        for (word, count) in words {
            if word.is_empty() || count == 0 {
                continue;
            }
            let mut seq: Vec<String> = word.chars().map(|c| c.to_string()).collect();
            seq.push(EOW.to_string());
            for s in &seq {
                symbols.entry(s.clone()).or_insert(());
            }
            table.push((seq, count));
        }

        let mut merges: HashMap<(String, String), usize> = HashMap::new();
        while symbols.len() < vocab_size {
            // count adjacent pairs
            let mut pair_counts: HashMap<(String, String), u64> = HashMap::new();
            for (seq, count) in &table {
                for w in seq.windows(2) {
                    *pair_counts.entry((w[0].clone(), w[1].clone())).or_insert(0) += count;
                }
            }
            let Some((best, best_count)) = pair_counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                break;
            };
            if best_count < 2 {
                break;
            }
            let merged = format!("{}{}", best.0, best.1);
            symbols.entry(merged.clone()).or_insert(());
            let rank = merges.len();
            merges.insert(best.clone(), rank);

            // apply the merge to every word
            for (seq, _) in &mut table {
                let mut i = 0;
                while i + 1 < seq.len() {
                    if seq[i] == best.0 && seq[i + 1] == best.1 {
                        seq[i] = merged.clone();
                        seq.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }

        let mut vocab: Vec<String> = symbols.into_keys().collect();
        vocab.sort();
        Self { merges, vocab }
    }

    /// Number of learned merges.
    pub fn num_merges(&self) -> usize {
        self.merges.len()
    }

    /// The symbol vocabulary (sorted).
    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }

    /// Encodes one word into subword pieces by applying merges in training
    /// order. Unknown characters survive as single-char pieces, so encoding
    /// never fails.
    pub fn encode(&self, word: &str) -> Vec<String> {
        if word.is_empty() {
            return Vec::new();
        }
        let mut seq: Vec<String> = word.chars().map(|c| c.to_string()).collect();
        seq.push(EOW.to_string());

        loop {
            // find the lowest-rank applicable merge
            let mut best: Option<(usize, usize)> = None; // (rank, position)
            for i in 0..seq.len() - 1 {
                if let Some(&rank) = self.merges.get(&(seq[i].clone(), seq[i + 1].clone())) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let merged = format!("{}{}", seq[i], seq[i + 1]);
            seq[i] = merged;
            seq.remove(i + 1);
        }
        seq
    }

    /// Encodes a multi-word string, concatenating per-word pieces.
    pub fn encode_text(&self, text: &str) -> Vec<String> {
        text.split_whitespace()
            .flat_map(|w| self.encode(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> BpeTokenizer {
        let corpus = [
            ("lentil", 50u64),
            ("lemon", 40),
            ("melon", 30),
            ("lime", 20),
            ("olive", 10),
        ];
        BpeTokenizer::train(corpus.iter().map(|&(w, c)| (w, c)), 60)
    }

    #[test]
    fn encoding_reconstructs_word() {
        let bpe = trained();
        for w in ["lentil", "lemon", "melon", "lime", "olive"] {
            let pieces = bpe.encode(w);
            assert_eq!(pieces.join(""), format!("{w}{EOW}"), "pieces {pieces:?}");
        }
    }

    #[test]
    fn frequent_words_become_few_pieces() {
        let bpe = trained();
        // 'lentil' dominates the corpus, so it should merge into 1-3 pieces
        assert!(bpe.encode("lentil").len() <= 3);
    }

    #[test]
    fn unseen_words_fall_back_to_fragments() {
        let bpe = trained();
        let pieces = bpe.encode("zucchini");
        assert_eq!(pieces.join(""), format!("zucchini{EOW}"));
        assert!(
            pieces.len() > 1,
            "unseen word cannot be a single learned piece"
        );
    }

    #[test]
    fn empty_word_gives_no_pieces() {
        let bpe = trained();
        assert!(bpe.encode("").is_empty());
    }

    #[test]
    fn vocab_size_caps_merges() {
        let corpus = [("aaaa", 100u64), ("aaab", 100), ("aabb", 100)];
        let small = BpeTokenizer::train(corpus.iter().map(|&(w, c)| (w, c)), 6);
        let large = BpeTokenizer::train(corpus.iter().map(|&(w, c)| (w, c)), 30);
        assert!(small.num_merges() < large.num_merges());
    }

    #[test]
    fn deterministic_training() {
        let a = trained();
        let b = trained();
        assert_eq!(a.encode("lemon"), b.encode("lemon"));
        assert_eq!(a.vocab(), b.vocab());
    }

    #[test]
    fn encode_text_handles_multiword_entities() {
        let bpe = trained();
        let pieces = bpe.encode_text("lemon lime");
        let joined = pieces.join("");
        assert_eq!(joined, format!("lemon{EOW}lime{EOW}"));
    }
}
