//! Token vocabulary with the special tokens sequence models need.

use std::collections::HashMap;

/// Padding token (id 0) — ignored by attention masks.
pub const PAD_TOKEN: &str = "[PAD]";
/// Unknown-token placeholder (id 1).
pub const UNK_TOKEN: &str = "[UNK]";
/// Classification token prepended to every sequence (id 2).
pub const CLS_TOKEN: &str = "[CLS]";
/// Separator/end token (id 3).
pub const SEP_TOKEN: &str = "[SEP]";
/// Mask token for MLM pre-training (id 4).
pub const MASK_TOKEN: &str = "[MASK]";

const SPECIALS: [&str; 5] = [PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN];

/// A frozen token → id mapping. Ids `0..5` are always the special tokens.
///
/// # Examples
///
/// ```
/// use textproc::Vocabulary;
///
/// let docs = [vec!["stir", "add"], vec!["add", "bake"]];
/// let v = Vocabulary::build(docs.iter().map(|d| d.iter().copied()), 1, None);
/// assert_eq!(v.id("add"), Some(v.lookup_or_unk("add")));
/// assert_eq!(v.lookup_or_unk("never-seen"), Vocabulary::UNK);
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    tokens: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Vocabulary {
    /// Id of [`PAD_TOKEN`].
    pub const PAD: u32 = 0;
    /// Id of [`UNK_TOKEN`].
    pub const UNK: u32 = 1;
    /// Id of [`CLS_TOKEN`].
    pub const CLS: u32 = 2;
    /// Id of [`SEP_TOKEN`].
    pub const SEP: u32 = 3;
    /// Id of [`MASK_TOKEN`].
    pub const MASK: u32 = 4;

    /// Builds a vocabulary from tokenized documents.
    ///
    /// Tokens occurring fewer than `min_freq` times map to `[UNK]`. When
    /// `max_size` is given, only the most frequent `max_size` non-special
    /// tokens are kept (ties broken by first occurrence). Ids are assigned
    /// in descending frequency order after the specials.
    pub fn build<'a>(
        docs: impl IntoIterator<Item = impl IntoIterator<Item = &'a str>>,
        min_freq: u64,
        max_size: Option<usize>,
    ) -> Self {
        let mut counts: HashMap<&str, (u64, usize)> = HashMap::new();
        let mut order = 0usize;
        for doc in docs {
            for tok in doc {
                let e = counts.entry(tok).or_insert((0, order));
                e.0 += 1;
                if e.0 == 1 {
                    e.1 = order;
                }
                order += 1;
            }
        }
        let mut ranked: Vec<(&str, u64, usize)> = counts
            .into_iter()
            .filter(|&(_, (f, _))| f >= min_freq.max(1))
            .map(|(t, (f, o))| (t, f, o))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.2.cmp(&b.2)));
        if let Some(cap) = max_size {
            ranked.truncate(cap);
        }

        let mut tokens: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        tokens.extend(ranked.into_iter().map(|(t, _, _)| t.to_string()));
        let ids = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Self { tokens, ids }
    }

    /// Builds a vocabulary directly from a fixed token list (specials are
    /// prepended; duplicates of specials are ignored).
    pub fn from_tokens(items: impl IntoIterator<Item = String>) -> Self {
        let mut tokens: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        let mut ids: HashMap<String, u32> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        for t in items {
            if !ids.contains_key(&t) {
                ids.insert(t.clone(), tokens.len() as u32);
                tokens.push(t);
            }
        }
        Self { tokens, ids }
    }

    /// Total size including the 5 special tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether only the specials are present.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= SPECIALS.len()
    }

    /// Exact lookup.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// Lookup defaulting to [`Vocabulary::UNK`].
    pub fn lookup_or_unk(&self, token: &str) -> u32 {
        self.id(token).unwrap_or(Self::UNK)
    }

    /// Token string for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Whether an id denotes one of the 5 special tokens.
    pub fn is_special(&self, id: u32) -> bool {
        (id as usize) < SPECIALS.len()
    }

    /// Ids of all non-special tokens.
    pub fn content_ids(&self) -> std::ops::Range<u32> {
        SPECIALS.len() as u32..self.tokens.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<&'static str>> {
        vec![
            vec!["add", "stir", "add"],
            vec!["add", "bake"],
            vec!["rare"],
        ]
    }

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocabulary::build(docs().iter().map(|d| d.iter().copied()), 1, None);
        assert_eq!(v.id(PAD_TOKEN), Some(0));
        assert_eq!(v.id(UNK_TOKEN), Some(1));
        assert_eq!(v.id(CLS_TOKEN), Some(2));
        assert_eq!(v.id(SEP_TOKEN), Some(3));
        assert_eq!(v.id(MASK_TOKEN), Some(4));
    }

    #[test]
    fn frequency_ordering() {
        let v = Vocabulary::build(docs().iter().map(|d| d.iter().copied()), 1, None);
        // 'add' (3x) gets the first content id
        assert_eq!(v.id("add"), Some(5));
        assert_eq!(v.len(), 5 + 4);
    }

    #[test]
    fn min_freq_filters() {
        let v = Vocabulary::build(docs().iter().map(|d| d.iter().copied()), 2, None);
        assert_eq!(v.id("add"), Some(5));
        assert_eq!(v.id("rare"), None);
        assert_eq!(v.lookup_or_unk("rare"), Vocabulary::UNK);
    }

    #[test]
    fn max_size_caps() {
        let v = Vocabulary::build(docs().iter().map(|d| d.iter().copied()), 1, Some(2));
        assert_eq!(v.len(), 7);
        assert!(v.id("add").is_some());
    }

    #[test]
    fn token_roundtrip() {
        let v = Vocabulary::build(docs().iter().map(|d| d.iter().copied()), 1, None);
        for id in v.content_ids() {
            assert_eq!(v.id(v.token(id)), Some(id));
        }
    }

    #[test]
    fn from_tokens_preserves_order() {
        let v = Vocabulary::from_tokens(["b".to_string(), "a".to_string()]);
        assert_eq!(v.id("b"), Some(5));
        assert_eq!(v.id("a"), Some(6));
    }

    #[test]
    fn is_special_detects_range() {
        let v = Vocabulary::from_tokens(["x".to_string()]);
        assert!(v.is_special(0));
        assert!(v.is_special(4));
        assert!(!v.is_special(5));
    }
}
