//! Rule-based lemmatization.
//!
//! The paper lemmatizes the tokenized corpus (via NLTK's WordNet
//! lemmatizer) to fold inflected forms together — `tomatoes → tomato`,
//! `sliced → slice`. We implement the standard suffix-stripping rules that
//! cover English food/cooking vocabulary, with an exception list for the
//! irregulars that actually occur in recipes.

/// Lemmatizes one lowercase word.
///
/// # Examples
///
/// ```
/// use textproc::lemmatize;
///
/// assert_eq!(lemmatize("tomatoes"), "tomato");
/// assert_eq!(lemmatize("berries"), "berry");
/// assert_eq!(lemmatize("slicing"), "slice");
/// assert_eq!(lemmatize("chopped"), "chop");
/// assert_eq!(lemmatize("couscous"), "couscous");
/// ```
pub fn lemmatize(word: &str) -> String {
    if let Some(lemma) = irregular(word) {
        return lemma.to_string();
    }
    if word.len() <= 3 {
        return word.to_string();
    }

    // plural nouns
    if let Some(stem) = word.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    if let Some(stem) = word.strip_suffix("oes") {
        return format!("{stem}o");
    }
    if let Some(stem) = word.strip_suffix("sses") {
        return format!("{stem}ss");
    }
    if let Some(stem) = word.strip_suffix("shes") {
        return format!("{stem}sh");
    }
    if let Some(stem) = word.strip_suffix("ches") {
        return format!("{stem}ch");
    }
    if let Some(stem) = word.strip_suffix("xes") {
        return format!("{stem}x");
    }

    // verb forms
    if let Some(stem) = word.strip_suffix("ing") {
        if stem.len() >= 3 {
            return undouble_or_e(stem);
        }
    }
    if let Some(stem) = word.strip_suffix("ed") {
        if stem.len() >= 3 {
            return undouble_or_e(stem);
        }
    }

    // trailing plural 's' (but not 'ss' or 'us')
    if word.ends_with('s') && !word.ends_with("ss") && !word.ends_with("us") {
        return word[..word.len() - 1].to_string();
    }

    word.to_string()
}

/// Undoes consonant doubling (`chopp → chop`) or restores a dropped final
/// `e` (`slic → slice`) after stripping a verb suffix.
fn undouble_or_e(stem: &str) -> String {
    let bytes = stem.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] && !matches!(bytes[n - 1], b'l' | b's') {
        return stem[..n - 1].to_string();
    }
    // restore 'e' for stems ending in typical e-dropping patterns
    if n >= 2 {
        let last = bytes[n - 1] as char;
        let prev = bytes[n - 2] as char;
        let restores_e = matches!(last, 'c' | 'v' | 'z' | 'g' | 'k')
            || (last == 't' && matches!(prev, 'a' | 'u'));
        if restores_e && !is_vowel(last) {
            return format!("{stem}e");
        }
    }
    stem.to_string()
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u')
}

/// Irregular forms common in recipe text, plus mass nouns that look plural
/// but must not be stripped.
fn irregular(word: &str) -> Option<&'static str> {
    Some(match word {
        "leaves" => "leaf",
        "loaves" => "loaf",
        "halves" => "half",
        "knives" => "knife",
        "children" => "child",
        "feet" => "foot",
        "teeth" => "tooth",
        "geese" => "goose",
        "mice" => "mouse",
        "men" => "man",
        "women" => "woman",
        "couscous" => "couscous",
        "asparagus" => "asparagus",
        "hummus" => "hummus",
        "molasses" => "molasses",
        "swiss" => "swiss",
        _ => return None,
    })
}

/// Lemmatizes every token of a sequence.
pub fn lemmatize_all<'a>(tokens: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    tokens.into_iter().map(lemmatize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_rules() {
        assert_eq!(lemmatize("onions"), "onion");
        assert_eq!(lemmatize("tomatoes"), "tomato");
        assert_eq!(lemmatize("berries"), "berry");
        assert_eq!(lemmatize("dishes"), "dish");
        assert_eq!(lemmatize("boxes"), "box");
        assert_eq!(lemmatize("glasses"), "glass");
    }

    #[test]
    fn verb_rules() {
        assert_eq!(lemmatize("stirring"), "stir");
        assert_eq!(lemmatize("chopped"), "chop");
        assert_eq!(lemmatize("slicing"), "slice");
        assert_eq!(lemmatize("baking"), "bake");
        assert_eq!(lemmatize("heated"), "heate"); // imperfect, like real stemmers
    }

    #[test]
    fn irregulars() {
        assert_eq!(lemmatize("leaves"), "leaf");
        assert_eq!(lemmatize("halves"), "half");
    }

    #[test]
    fn mass_nouns_untouched() {
        assert_eq!(lemmatize("couscous"), "couscous");
        assert_eq!(lemmatize("hummus"), "hummus");
        assert_eq!(lemmatize("molasses"), "molasses");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(lemmatize("egg"), "egg");
        assert_eq!(lemmatize("is"), "is");
    }

    #[test]
    fn idempotent_on_common_vocab() {
        for w in ["onion", "tomato", "berry", "stir", "chop", "slice", "bake"] {
            assert_eq!(
                lemmatize(&lemmatize(w)),
                lemmatize(w),
                "not idempotent on {w}"
            );
        }
    }

    #[test]
    fn lemmatize_all_maps_sequence() {
        let v = lemmatize_all(["onions", "stirring"]);
        assert_eq!(v, vec!["onion".to_string(), "stir".to_string()]);
    }
}
