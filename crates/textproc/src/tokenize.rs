//! Whitespace tokenization over cleaned text.

/// Splits cleaned text into word tokens.
///
/// Intended to run after [`clean_text`](crate::clean_text); it simply
/// splits on whitespace and drops empties, so raw punctuation survives if
/// cleaning was skipped.
///
/// # Examples
///
/// ```
/// use textproc::tokenize;
///
/// assert_eq!(tokenize("red lentil  stir"), vec!["red", "lentil", "stir"]);
/// ```
pub fn tokenize(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(tokenize("a b  c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn leading_trailing_space_ignored() {
        assert_eq!(tokenize("  x  "), vec!["x"]);
    }
}
