//! Count and TF-IDF vectorization into CSR matrices.
//!
//! The paper feeds the statistical models (LR, NB, SVM, RF) TF-IDF vectors
//! "because of its weighted function which reduces the effect of high
//! frequency yet less meaningful words" — exactly what the `add`-heavy
//! process head of RecipeDB needs. We use smoothed IDF and optional L2 row
//! normalization, matching scikit-learn's `TfidfVectorizer` defaults (the
//! toolkit behind the paper's baselines).

use std::collections::{HashMap, HashSet};

use crate::sparse::{CsrBuilder, CsrMatrix};

/// Raw term-count vectorizer: learns a term → column mapping on `fit`, then
/// turns token documents into sparse count rows.
#[derive(Debug, Clone)]
pub struct CountVectorizer {
    vocab: HashMap<String, u32>,
    terms: Vec<String>,
    /// Per-column document frequencies, aligned with `terms`.
    doc_freq: Vec<u64>,
    min_df: u64,
}

impl CountVectorizer {
    /// Creates a vectorizer keeping terms appearing in at least `min_df`
    /// documents.
    pub fn new(min_df: u64) -> Self {
        Self {
            vocab: HashMap::new(),
            terms: Vec::new(),
            doc_freq: Vec::new(),
            min_df: min_df.max(1),
        }
    }

    /// Learns the vocabulary from tokenized documents. Terms get columns in
    /// descending document-frequency order (ties by first appearance).
    pub fn fit<'a>(
        &mut self,
        docs: impl IntoIterator<Item = impl IntoIterator<Item = &'a str>>,
    ) -> &mut Self {
        let mut df: HashMap<&str, (u64, usize)> = HashMap::new();
        let mut order = 0usize;
        for doc in docs {
            // set-based dedup: O(1) membership instead of scanning a Vec
            // per token, which was quadratic in document length
            let mut seen: HashSet<&str> = HashSet::new();
            for t in doc {
                if seen.insert(t) {
                    let e = df.entry(t).or_insert((0, order));
                    e.0 += 1;
                    order += 1;
                }
            }
        }
        let mut ranked: Vec<(&str, u64, usize)> = df
            .into_iter()
            .filter(|&(_, (f, _))| f >= self.min_df)
            .map(|(t, (f, o))| (t, f, o))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.2.cmp(&b.2)));
        self.terms = ranked.iter().map(|(t, _, _)| t.to_string()).collect();
        self.doc_freq = ranked.iter().map(|&(_, f, _)| f).collect();
        self.vocab = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        self
    }

    /// Vocabulary size after `fit`.
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }

    /// Document frequency per column, as learned by the last [`fit`]
    /// (`doc_freq()[c]` is the number of fit documents containing
    /// [`term(c)`]).
    ///
    /// [`fit`]: CountVectorizer::fit
    /// [`term(c)`]: CountVectorizer::term
    pub fn doc_freq(&self) -> &[u64] {
        &self.doc_freq
    }

    /// Column of a term, if in-vocabulary.
    pub fn column(&self, term: &str) -> Option<u32> {
        self.vocab.get(term).copied()
    }

    /// Term at a column.
    pub fn term(&self, col: u32) -> &str {
        &self.terms[col as usize]
    }

    /// Transforms documents into a sparse count matrix. Out-of-vocabulary
    /// tokens are dropped.
    pub fn transform<'a>(
        &self,
        docs: impl IntoIterator<Item = impl IntoIterator<Item = &'a str>>,
    ) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.terms.len());
        for doc in docs {
            let mut counts: HashMap<u32, f32> = HashMap::new();
            for t in doc {
                if let Some(&c) = self.vocab.get(t) {
                    *counts.entry(c).or_insert(0.0) += 1.0;
                }
            }
            b.push_unsorted_row(counts.into_iter().map(|(c, v)| (c as usize, v)));
        }
        b.build()
    }
}

/// TF-IDF weighting options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfIdfConfig {
    /// Minimum document frequency for a term to be kept.
    pub min_df: u64,
    /// Use `1 + ln(tf)` instead of raw term frequency.
    pub sublinear_tf: bool,
    /// L2-normalize each document row.
    pub l2_normalize: bool,
}

impl Default for TfIdfConfig {
    fn default() -> Self {
        Self {
            min_df: 1,
            sublinear_tf: false,
            l2_normalize: true,
        }
    }
}

/// TF-IDF vectorizer with smoothed IDF:
/// `idf(t) = ln((1 + n) / (1 + df(t))) + 1`.
#[derive(Debug, Clone)]
pub struct TfIdfVectorizer {
    counter: CountVectorizer,
    idf: Vec<f32>,
    config: TfIdfConfig,
}

impl TfIdfVectorizer {
    /// Creates an unfitted vectorizer.
    pub fn new(config: TfIdfConfig) -> Self {
        Self {
            counter: CountVectorizer::new(config.min_df),
            idf: Vec::new(),
            config,
        }
    }

    /// Learns vocabulary and IDF weights. Documents must be re-iterable, so
    /// this takes a slice of token vectors.
    pub fn fit<S: AsRef<str>>(&mut self, docs: &[Vec<S>]) -> &mut Self {
        self.counter
            .fit(docs.iter().map(|d| d.iter().map(AsRef::as_ref)));
        // the counter already tallied per-column document frequencies
        // during its fit — no second pass over the corpus needed
        let n = docs.len() as f32;
        self.idf = self
            .counter
            .doc_freq()
            .iter()
            .map(|&d| ((1.0 + n) / (1.0 + d as f32)).ln() + 1.0)
            .collect();
        self
    }

    /// Vocabulary size after `fit`.
    pub fn vocab_size(&self) -> usize {
        self.counter.vocab_size()
    }

    /// The weighting options this vectorizer was built with (needed to
    /// reproduce its transform from a serialized snapshot).
    pub fn config(&self) -> TfIdfConfig {
        self.config
    }

    /// IDF weight of a column.
    pub fn idf(&self, col: u32) -> f32 {
        self.idf[col as usize]
    }

    /// Column of a term, if in-vocabulary.
    pub fn column(&self, term: &str) -> Option<u32> {
        self.counter.column(term)
    }

    /// Term at a column.
    pub fn term(&self, col: u32) -> &str {
        self.counter.term(col)
    }

    /// Transforms documents into TF-IDF rows.
    pub fn transform<S: AsRef<str>>(&self, docs: &[Vec<S>]) -> CsrMatrix {
        let mut b = CsrBuilder::new(self.vocab_size());
        for doc in docs {
            let mut counts: HashMap<u32, f32> = HashMap::new();
            for t in doc {
                if let Some(c) = self.counter.column(t.as_ref()) {
                    *counts.entry(c).or_insert(0.0) += 1.0;
                }
            }
            let mut entries: Vec<(usize, f32)> = counts
                .into_iter()
                .map(|(c, tf)| {
                    let tf = if self.config.sublinear_tf {
                        1.0 + tf.ln()
                    } else {
                        tf
                    };
                    (c as usize, tf * self.idf[c as usize])
                })
                .collect();
            // canonical column order BEFORE the norm: HashMap iteration
            // order varies per instance, and f32 sums depend on order, so
            // normalizing first would make the row's bits nondeterministic
            entries.sort_unstable_by_key(|&(c, _)| c);
            if self.config.l2_normalize {
                let norm: f32 = entries.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
                if norm > 0.0 {
                    for (_, v) in &mut entries {
                        *v /= norm;
                    }
                }
            }
            b.push_sorted_row(entries);
        }
        b.build()
    }

    /// `fit` followed by `transform` on the same documents.
    pub fn fit_transform<S: AsRef<str>>(&mut self, docs: &[Vec<S>]) -> CsrMatrix {
        self.fit(docs);
        self.transform(docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<&'static str>> {
        vec![
            vec!["add", "stir", "onion"],
            vec!["add", "bake"],
            vec!["add", "stir", "stir"],
        ]
    }

    #[test]
    fn count_vectorizer_counts() {
        let mut cv = CountVectorizer::new(1);
        cv.fit(docs().iter().map(|d| d.iter().copied()));
        let m = cv.transform(docs().iter().map(|d| d.iter().copied()));
        assert_eq!(m.rows(), 3);
        let stir_col = cv.column("stir").unwrap();
        assert_eq!(m.row_dense(2)[stir_col as usize], 2.0);
    }

    #[test]
    fn df_ordering_puts_common_terms_first() {
        let mut cv = CountVectorizer::new(1);
        cv.fit(docs().iter().map(|d| d.iter().copied()));
        assert_eq!(cv.column("add"), Some(0)); // in all 3 docs
    }

    #[test]
    fn min_df_drops_rare_terms() {
        let mut cv = CountVectorizer::new(2);
        cv.fit(docs().iter().map(|d| d.iter().copied()));
        assert!(cv.column("onion").is_none());
        assert!(cv.column("stir").is_some());
    }

    #[test]
    fn oov_tokens_dropped_at_transform() {
        let mut cv = CountVectorizer::new(1);
        cv.fit(docs().iter().map(|d| d.iter().copied()));
        let m = cv.transform(
            [vec!["add", "unseen-token"]]
                .iter()
                .map(|d| d.iter().copied()),
        );
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn transform_is_bit_deterministic_and_order_invariant() {
        // regression: the L2 norm used to be summed in HashMap iteration
        // order, so the same document could produce bitwise-different rows
        let mut tv = TfIdfVectorizer::new(TfIdfConfig::default());
        tv.fit(&docs());
        let doc = vec![vec!["stir", "add", "onion", "stir", "bake"]];
        let reversed = vec![vec!["bake", "stir", "onion", "add", "stir"]];
        let a = tv.transform(&doc);
        for _ in 0..20 {
            assert_eq!(
                a,
                tv.transform(&doc),
                "repeat transform must be bit-identical"
            );
            assert_eq!(
                a,
                tv.transform(&reversed),
                "token order must not leak into rows"
            );
        }
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        let mut tv = TfIdfVectorizer::new(TfIdfConfig::default());
        tv.fit(&docs());
        let add = tv.column("add").unwrap();
        let onion = tv.column("onion").unwrap();
        assert!(
            tv.idf(add) < tv.idf(onion),
            "'add' (df=3) must have lower idf than 'onion' (df=1)"
        );
    }

    #[test]
    fn l2_rows_have_unit_norm() {
        let mut tv = TfIdfVectorizer::new(TfIdfConfig::default());
        let m = tv.fit_transform(&docs());
        for r in 0..m.rows() {
            let norm = m.row_norm(r);
            assert!((norm - 1.0).abs() < 1e-5, "row {r} norm {norm}");
        }
    }

    #[test]
    fn unnormalized_matches_hand_computation() {
        let mut tv = TfIdfVectorizer::new(TfIdfConfig {
            min_df: 1,
            sublinear_tf: false,
            l2_normalize: false,
        });
        let m = tv.fit_transform(&docs());
        let stir = tv.column("stir").unwrap();
        // doc 2 has tf(stir)=2, df(stir)=2, n=3:
        // idf = ln(4/3) + 1
        let expected = 2.0 * ((4.0f32 / 3.0).ln() + 1.0);
        assert!((m.row_dense(2)[stir as usize] - expected).abs() < 1e-5);
    }

    #[test]
    fn sublinear_tf_compresses_counts() {
        let mut lin = TfIdfVectorizer::new(TfIdfConfig {
            sublinear_tf: false,
            l2_normalize: false,
            ..Default::default()
        });
        let mut sub = TfIdfVectorizer::new(TfIdfConfig {
            sublinear_tf: true,
            l2_normalize: false,
            ..Default::default()
        });
        let ml = lin.fit_transform(&docs());
        let ms = sub.fit_transform(&docs());
        let stir = lin.column("stir").unwrap() as usize;
        assert!(ms.row_dense(2)[stir] < ml.row_dense(2)[stir]);
    }

    #[test]
    fn empty_document_yields_empty_row() {
        let mut tv = TfIdfVectorizer::new(TfIdfConfig::default());
        tv.fit(&docs());
        let m = tv.transform(&[Vec::<&str>::new()]);
        assert_eq!(m.row(0).0.len(), 0);
    }
}
