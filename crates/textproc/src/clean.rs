//! Text cleaning: the paper's "digits or symbols were omitted from the
//! items to only keep words" step.

/// Lowercases and strips every character that is not an ASCII letter,
/// hyphen, or whitespace, then collapses runs of whitespace to single
/// spaces.
///
/// # Examples
///
/// ```
/// use textproc::clean_text;
///
/// assert_eq!(clean_text("2 cups Red Lentil!"), "cups red lentil");
/// assert_eq!(clean_text("stir-fry  (5 min)"), "stir-fry min");
/// ```
pub fn clean_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut last_space = true;
    for ch in input.chars() {
        if ch.is_ascii_alphabetic() || ch == '-' {
            out.push(ch.to_ascii_lowercase());
            last_space = false;
        } else if ch.is_whitespace() && !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    // collapse hyphens that lost their neighbours ("5-6" → "-")
    out.split(' ')
        .filter(|w| w.chars().any(|c| c.is_ascii_alphabetic()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_digits_and_symbols() {
        assert_eq!(clean_text("1/2 tsp. salt #organic"), "tsp salt organic");
    }

    #[test]
    fn lowercases() {
        assert_eq!(clean_text("Basmati RICE"), "basmati rice");
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(clean_text("a   b\t\nc"), "a b c");
    }

    #[test]
    fn keeps_hyphenated_words() {
        assert_eq!(clean_text("stir-fry extra-virgin"), "stir-fry extra-virgin");
    }

    #[test]
    fn drops_pure_symbol_words() {
        assert_eq!(clean_text("5-6 --- abc"), "abc");
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert_eq!(clean_text(""), "");
        assert_eq!(clean_text("123 !@# 456"), "");
    }

    #[test]
    fn unicode_is_dropped() {
        assert_eq!(clean_text("café 完成 jalapeño"), "caf jalapeo");
    }
}
