//! Text preprocessing for recipe sequences, implementing §IV of the paper.
//!
//! The paper preprocesses RecipeDB's structured sequential lists by
//! stripping digits and symbols, tokenizing, and lemmatizing, producing
//! 20,400 distinct entities. It then branches:
//!
//! * **statistical models** consume TF-IDF vectors ([`TfIdfVectorizer`]
//!   over the sparse [`CsrMatrix`]);
//! * **sequential models** consume padded id sequences
//!   ([`SequenceEncoder`]) over a [`Vocabulary`] with the usual special
//!   tokens, plus masked-language-model corruption ([`masking`]) for
//!   transformer pre-training — static masking for the BERT recipe, dynamic
//!   re-masking per epoch for the RoBERTa recipe.
//!
//! A byte-pair-encoding subword tokenizer ([`BpeTokenizer`]) is provided
//! for the open-vocabulary ablation (RecipeDB's 11.7k hapax ingredients are
//! OOV at entity level).

mod clean;
mod lemma;
pub mod masking;
mod ngrams;
mod sequence;
mod sparse;
mod tfidf;
mod tokenize;
mod vocab;
mod wordpiece;

pub use clean::clean_text;
pub use lemma::{lemmatize, lemmatize_all};
pub use ngrams::{ngram_tokens, with_ngrams};
pub use sequence::{EncodedSequence, SequenceEncoder};
pub use sparse::{CsrBuilder, CsrMatrix};
pub use tfidf::{CountVectorizer, TfIdfConfig, TfIdfVectorizer};
pub use tokenize::tokenize;
pub use vocab::{Vocabulary, CLS_TOKEN, MASK_TOKEN, PAD_TOKEN, SEP_TOKEN, UNK_TOKEN};
pub use wordpiece::BpeTokenizer;
