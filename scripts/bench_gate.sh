#!/usr/bin/env bash
# Bench regression gate: compares freshly emitted BENCH_*.json files at the
# workspace root against the committed baselines in benchmarks/baselines/,
# failing when any timing regresses beyond the tolerance.
#
# Usage:
#   scripts/bench_gate.sh            # runs the matmul bench if needed, then gates
#   BENCH_GATE_TOL_PCT=75 scripts/bench_gate.sh
#   BENCH_GATE_SKIP_RUN=1 scripts/bench_gate.sh   # gate existing files only
#
# Timings on a different machine (or a loaded CI box) are noisy, so the
# default tolerance is deliberately wide: a fresh *_ns value fails only when
# it exceeds the baseline by more than BENCH_GATE_TOL_PCT percent (default
# 50). Baselines with a different thread count are compared per-kernel all
# the same — the bit-identity assertions inside the bench are what make the
# numbers comparable.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${BENCH_GATE_TOL_PCT:-50}"
BASELINES=benchmarks/baselines

if [ ! -d "$BASELINES" ] || [ -z "$(ls "$BASELINES"/BENCH_*.json 2>/dev/null)" ]; then
    echo "bench_gate: no baselines under $BASELINES — nothing to gate"
    exit 0
fi

for baseline in "$BASELINES"/BENCH_*.json; do
    fresh="$(basename "$baseline")"
    if [ ! -f "$fresh" ] && [ -z "${BENCH_GATE_SKIP_RUN:-}" ]; then
        case "$fresh" in
        BENCH_matmul.json)
            echo "bench_gate: $fresh missing — running the matmul bench"
            cargo bench -q -p bench --bench matmul >/dev/null
            ;;
        BENCH_serve.json | BENCH_quant.json)
            # One serve_load run emits both files (f32/int8 serving
            # timings plus the cache sweep), so whichever baseline hits
            # this arm first refreshes the other too.
            echo "bench_gate: $fresh missing — running serve_load"
            cargo run --release -q -p bench --bin serve_load >/dev/null
            ;;
        BENCH_router.json)
            echo "bench_gate: $fresh missing — running router_load"
            cargo run --release -q -p bench --bin router_load >/dev/null
            ;;
        BENCH_cq.json)
            echo "bench_gate: $fresh missing — running cq_load"
            cargo run --release -q -p bench --bin cq_load >/dev/null
            ;;
        BENCH_registry.json)
            # the featurize arm's timing depends on the pool width, so pin
            # the thread count the baseline was recorded at
            echo "bench_gate: $fresh missing — running registry_load"
            TENSOR_THREADS=4 cargo run --release -q -p bench --bin registry_load >/dev/null
            ;;
        BENCH_supervisor.json)
            # supervisor_load spawns the replica_worker binary from the
            # serve crate, which `cargo run -p bench` alone won't build
            echo "bench_gate: $fresh missing — running supervisor_load"
            cargo build --release -q -p serve
            cargo run --release -q -p bench --bin supervisor_load >/dev/null
            ;;
        esac
    fi
    if [ ! -f "$fresh" ]; then
        echo "bench_gate: SKIP $fresh (no fresh run found)"
        continue
    fi

    python3 - "$baseline" "$fresh" "$TOL" <<'PY'
import json
import sys

baseline_path, fresh_path, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))


def keyed(doc):
    out = {}
    for entry in doc.get("entries", []):
        key = tuple(sorted((k, v) for k, v in entry.items() if not isinstance(v, (int, float))))
        out[key] = entry
    return out


base_entries, fresh_entries = keyed(baseline), keyed(fresh)
failures = []
compared = 0
for key, base in base_entries.items():
    fresh_entry = fresh_entries.get(key)
    label = ", ".join(str(v) for _, v in key)
    if fresh_entry is None:
        failures.append(f"{baseline_path} [{label}]: entry present in baseline but missing from {fresh_path}")
        continue
    for field, base_val in base.items():
        # Gate wall-time fields only: lower is better, regression = growth
        # beyond tolerance. Ratios like `speedup` are quotients of two noisy
        # timings and are reported but never gated.
        if not field.endswith("_ns") or not isinstance(base_val, (int, float)):
            continue
        fresh_val = fresh_entry.get(field)
        if not isinstance(fresh_val, (int, float)):
            failures.append(f"{baseline_path} [{label}] field {field}: present in baseline but missing from {fresh_path}")
            continue
        compared += 1
        limit = base_val * (1 + tol_pct / 100.0)
        delta_pct = (fresh_val - base_val) / base_val * 100.0
        status = "FAIL" if fresh_val > limit else "ok"
        print(f"  [{status:>4}] {label:<20} {field:<12} {base_val:>14.1f} -> {fresh_val:>14.1f} ({delta_pct:+.1f}%)")
        if fresh_val > limit:
            failures.append(
                f"{baseline_path} [{label}] field {field}: "
                f"{base_val:.1f} -> {fresh_val:.1f} ns ({delta_pct:+.1f}% > +{tol_pct:.0f}%)"
            )

print(f"bench_gate: {fresh_path} vs {baseline_path}: {compared} timings, tolerance +{tol_pct:.0f}%")
if failures:
    print(f"bench_gate: {len(failures)} regression(s):", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
PY
done

echo "bench_gate: all benchmarks within tolerance"
