#!/usr/bin/env bash
# Gate script: formatting, lints, release build, and the full test suite.
# Run from anywhere; it cds to the workspace root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "all checks passed"
