#!/usr/bin/env bash
# Gate script: formatting, lints, release build, and the full test suite.
# Run from anywhere; it cds to the workspace root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

# The fault-tolerance suite exercises panic containment and shard merging,
# whose code paths differ between serial and parallel pools — run both.
echo "== fault tolerance (single-threaded pool) =="
TENSOR_THREADS=1 cargo test -q -p cuisine --test fault_tolerance

echo "== fault tolerance (multi-threaded pool) =="
TENSOR_THREADS=4 cargo test -q -p cuisine --test fault_tolerance

echo "all checks passed"
