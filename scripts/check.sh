#!/usr/bin/env bash
# Gate script: formatting, lints, release build, and the full test suite.
# Run from anywhere; it cds to the workspace root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== cargo test --doc =="
cargo test --doc -q

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

# The fault-tolerance and tensor-property suites exercise code paths that
# differ between serial and parallel pools (panic containment, shard
# merging, tile claiming) — run them at several pool widths.
for threads in 1 2 4; do
    echo "== pool-sensitive suites (TENSOR_THREADS=$threads) =="
    TENSOR_THREADS=$threads cargo test -q -p cuisine \
        --test fault_tolerance --test tensor_properties --test trace_integration
done

echo "all checks passed"
