#!/usr/bin/env bash
# Gate script: formatting, lints, release build, and the full test suite.
# Run from anywhere; it cds to the workspace root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

# Markdown dead-link check + rustdoc -D warnings + runnable doc-examples
echo "== documentation gate (doc_check.sh) =="
scripts/doc_check.sh

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

# The fault-tolerance, tensor-property and quant-property suites exercise
# code paths that differ between serial and parallel pools (panic
# containment, shard merging, tile claiming, int8 column-tile claiming) —
# run them at several pool widths, crossed with each tensor backend
# (TENSOR_BACKEND): the determinism contract says results are bit-identical
# across backends × thread counts, and the conformance/selection suites
# assert exactly that. The serve suites (batching, replica router, trace
# gauges) ride along because replica workers drive the pool from several
# threads at once.
for threads in 1 2 4; do
    for be in scalar simd; do
        echo "== pool-sensitive suites (TENSOR_THREADS=$threads TENSOR_BACKEND=$be) =="
        TENSOR_THREADS=$threads TENSOR_BACKEND=$be cargo test -q -p cuisine \
            --test fault_tolerance --test tensor_properties \
            --test quant_properties --test backend_conformance \
            --test backend_selection
    done
    echo "== serve suites (TENSOR_THREADS=$threads) =="
    TENSOR_THREADS=$threads cargo test -q -p serve \
        --test serve_integration --test supervisor_integration \
        --test trace_integration --test completion_queue \
        --test registry_stress
done

# End-to-end int8 accuracy gate: serve_load trains a small model, serves it
# through both the f32 and quantized registries, and asserts top-class
# agreement >= 99% plus bit-identity of the quantized kernels across thread
# counts. JSON goes to a scratch dir so the workspace BENCH_*.json files
# (compared against baselines by bench_gate.sh) are not clobbered.
quant_gate_dir="$(mktemp -d)"
trap 'rm -rf "$quant_gate_dir"' EXIT
for threads in 1 4; do
    echo "== quantized accuracy gate (TENSOR_THREADS=$threads) =="
    TENSOR_THREADS=$threads cargo run --release -q -p bench --bin serve_load -- \
        --requests 192 --min-agreement 0.99 \
        --json "$quant_gate_dir/BENCH_serve.json" \
        --quant-json "$quant_gate_dir/BENCH_quant.json"
done

# Replicated-tier gate: router_load proves bit-identical answers across
# replicas, >= 2.5x stalled scaling at 4 replicas vs 1, and a rolling
# deploy under load with zero answers from an ungated model version.
echo "== replicated serving gate (router_load) =="
cargo run --release -q -p bench --bin router_load -- \
    --min-scaling 2.5 --json "$quant_gate_dir/BENCH_router.json"

# Completion-queue gate: cq_load pins >= 1024 requests in flight from a
# single submitter thread (the non-blocking front-end the event-loop
# worker rides) and requires every answer bit-identical to the
# sequential path.
echo "== completion queue gate (cq_load) =="
cargo run --release -q -p bench --bin cq_load -- \
    --min-inflight 1024 --json "$quant_gate_dir/BENCH_cq.json"

# Sharded-registry gate: registry_load proves >= 3x aggregate lookup
# throughput at 4 reader threads vs the single-RwLock baseline under a
# hot-swap storm, bounded sharded lookup p99, and >= 2.5x batch
# featurization speedup with bit-identical predictions. TENSOR_THREADS=4
# so the featurize fan-out has a pool to run on.
echo "== sharded registry gate (registry_load) =="
TENSOR_THREADS=4 cargo run --release -q -p bench --bin registry_load -- \
    --min-lookup-scaling 3.0 --min-featurize-speedup 2.5 \
    --json "$quant_gate_dir/BENCH_registry.json"

# Process-isolation gate: supervisor_load drives the same stream through
# an in-process fleet and a supervised fleet of replica_worker processes
# (unix sockets), asserts bitwise-equal answers, then kill -9s a worker
# under live traffic and requires zero wrong answers plus bounded
# respawn-and-reinstate recovery. replica_worker is built by the release
# build above and resolved as a sibling of the bench binary.
echo "== process isolation gate (supervisor_load) =="
cargo run --release -q -p bench --bin supervisor_load -- \
    --max-recovery-ms 15000 --json "$quant_gate_dir/BENCH_supervisor.json"

echo "all checks passed"
