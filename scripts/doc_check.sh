#!/usr/bin/env bash
# Documentation gate: dead-link check over the markdown docs, rustdoc
# with warnings denied, and the runnable doc-examples.
#
# Usage: scripts/doc_check.sh
#
# Three layers, cheapest first:
#   1. every relative markdown link in docs/*.md and README.md must
#      resolve to a real file, and a #fragment onto a markdown file must
#      match a heading anchor in the target (GitHub slug rules);
#   2. `cargo doc` must be warning-clean (broken intra-doc links and
#      undocumented public items in crates that deny them fail here);
#   3. `cargo test --doc` runs every doc-example (the serve submit/poll
#      examples are real programs, not illustrations).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== markdown link check (docs/*.md, README.md) =="
python3 - docs/*.md README.md <<'PY'
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def anchors(path):
    """GitHub-style slugs for every markdown heading in `path`."""
    slugs = set()
    fenced = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced or not re.match(r"^#{1,6} ", line):
            continue
        heading = line.lstrip("#").strip()
        heading = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
        slug = re.sub(r"[^\w\- ]", "", heading.lower()).replace(" ", "-")
        slugs.add(slug)
    return slugs


failures = []
checked = 0
for name in sys.argv[1:]:
    doc = Path(name)
    fenced = False
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = target.partition("#")
            if not target:  # pure in-page fragment: check against this doc
                target_path = doc
            else:
                target_path = (doc.parent / target).resolve()
            checked += 1
            if not target_path.exists():
                failures.append(f"{name}:{lineno}: dead link -> {target}")
                continue
            if fragment and target_path.suffix == ".md":
                if fragment not in anchors(target_path):
                    failures.append(
                        f"{name}:{lineno}: dead anchor -> {target or doc.name}#{fragment}"
                    )

print(f"doc_check: {checked} relative links across {len(sys.argv) - 1} files")
if failures:
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
PY

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== cargo test --doc =="
cargo test --doc -q

echo "doc_check: all documentation checks passed"
