//! Shared fixtures for the kernel test suites.
//!
//! `tensor_properties.rs` (thread invariance) and `backend_conformance.rs`
//! (backend invariance) deliberately share one shape generator and one set
//! of naive references, so any shape either suite discovers as adversarial
//! exercises both contracts.
//!
//! The naive references reproduce the documented accumulation contract
//! exactly (see `docs/BACKENDS.md`): `a_b`/`at_b` accumulate ascending
//! over the shared dimension skipping `A` factors that are exactly `0.0`,
//! and `a_bt` replays the fixed eight-lane reduction tree of the `dot`
//! kernel. That makes every differential check in these suites *bitwise*,
//! not approximate.

#![allow(dead_code)] // each test binary uses a subset of these fixtures

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{Initializer, Tensor};

/// Thread counts the pool-sensitive suites sweep (`run_scoped` makes these
/// real threads even on single-core runners).
pub const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Shapes that stress tile boundaries: 1, primes, and a couple of sizes
/// around the blocking factor.
pub fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(3),
        Just(5),
        Just(7),
        Just(13),
        Just(17),
        Just(31)
    ]
}

/// [`ragged_dim`] plus degenerate (zero) and vector-width-straddling sizes:
/// one element below, at, and above the 8-lane AVX2 and 16-lane AVX-512
/// widths and the 32/64-column register blocks, where masked-tail bugs
/// live.
pub fn conformance_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1),
        Just(2),
        Just(3),
        Just(5),
        Just(7),
        Just(8),
        Just(9),
        Just(13),
        Just(15),
        Just(16),
        Just(17),
        Just(31),
        Just(32),
        Just(33),
        Just(63),
        Just(64),
        Just(65)
    ]
}

/// Deterministic grid of `(m, k, n)` shapes covering the degenerate and
/// width-straddling cases, for non-proptest sweeps that reproduce without
/// a seed.
pub const FIXED_SHAPE_GRID: [(usize, usize, usize); 14] = [
    (1, 1, 1),
    (0, 3, 4),
    (3, 0, 4),
    (3, 4, 0),
    (1, 31, 1),
    (31, 1, 31),
    (2, 17, 5),
    (13, 13, 13),
    (7, 64, 3),
    (64, 7, 64),
    (4, 8, 16),
    (5, 9, 17),
    (3, 15, 65),
    (16, 33, 63),
];

pub fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Initializer::Uniform(2.0).init(rows, cols, &mut rng)
}

/// Naive `C = A · B` with the documented accumulation contract: ascending
/// `p`, factors with `A[i][p] == 0.0` skipped (not multiplied), so the
/// blocked/SIMD kernels can be compared bit-exactly even on inputs with
/// signed zeros and non-finite values.
pub fn naive_a_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let a_ip = a.get(i, p);
                if a_ip == 0.0 {
                    continue;
                }
                acc += a_ip * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Naive `C = Aᵀ · B` (`A` stored `k × m`), same contract as [`naive_a_b`].
pub fn naive_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let (_, n) = b.shape();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let a_pi = a.get(p, i);
                if a_pi == 0.0 {
                    continue;
                }
                acc += a_pi * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// The `dot` contract: eight partial sums over ascending chunks collapsed
/// through the fixed reduction tree, then an ascending scalar tail. No
/// zero-skip on this path.
pub fn reference_dot(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / 8;
    let mut acc = [0.0f32; 8];
    for c in 0..chunks {
        for l in 0..8 {
            acc[l] += a[c * 8 + l] * b[c * 8 + l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Naive `C = A · Bᵀ` (`B` stored `n × k`): one [`reference_dot`] per
/// output element.
pub fn naive_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, _) = b.shape();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = &a.as_slice()[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b.as_slice()[j * k..(j + 1) * k];
            out.set(i, j, reference_dot(a_row, b_row));
        }
    }
    out
}

/// Bitwise tensor comparison with a per-element repro message.
pub fn assert_bits_equal(label: &str, reference: &Tensor, got: &Tensor) {
    assert_eq!(reference.shape(), got.shape(), "{label}: shape mismatch");
    for (i, (r, g)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(
            r.to_bits(),
            g.to_bits(),
            "{label}: element {i} differs: {r} vs {g}"
        );
    }
}
