//! Regression tests for backend selection, forcing, fallback, and the
//! `tensor.backend.*` trace counters.
//!
//! The contract under test (see `docs/BACKENDS.md`):
//!
//! * `TENSOR_BACKEND` forces a backend; `auto`/unset picks the most
//!   specialised supported one (CI sweeps this suite with the variable set
//!   to each backend, and `active_backend_honors_forced_env` checks the
//!   process actually honoured it);
//! * forcing an unknown or unsupported backend falls back to `scalar`
//!   with a `tensor.backend.forced_fallbacks` tick — never a panic;
//! * every dispatch records the chosen backend (`tensor.backend.ops.*`)
//!   and per-shape algorithm (`tensor.backend.algo.*`), so production
//!   traces show exactly which kernels served a workload.
//!
//! Trace state is process-global, so every test that enables tracing
//! serialises on [`TRACE_TEST_LOCK`].

mod common;

use std::sync::{Mutex, MutexGuard, PoisonError};

use common::*;
use tensor::{
    backend, matmul, matmul_a_bt, matmul_at_b, quant_matmul, with_backend, MatmulAlgo, MatmulDesc,
    QuantMatrix,
};

/// Serialises tests that enable/reset the global trace registry.
static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

fn trace_guard() -> MutexGuard<'static, ()> {
    TRACE_TEST_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn counter(snap: &trace::TraceSnapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

#[test]
fn resolve_honors_explicit_names_case_insensitively() {
    for spelling in ["scalar", "SCALAR", " Scalar "] {
        let r = backend::resolve(Some(spelling));
        assert_eq!(r.backend.name(), "scalar", "spelling {spelling:?}");
        assert!(
            r.fallback.is_none(),
            "spelling {spelling:?} must not fall back"
        );
    }
    for b in backend::all() {
        if b.supported() {
            let r = backend::resolve(Some(b.name()));
            assert_eq!(r.backend.name(), b.name());
            assert!(r.fallback.is_none());
        }
    }
}

#[test]
fn resolve_auto_prefers_the_most_specialised_supported_backend() {
    let expected = backend::all()
        .into_iter()
        .rev()
        .find(|b| b.supported())
        .expect("scalar is always supported")
        .name();
    for spelling in [None, Some(""), Some("auto"), Some(" AUTO ")] {
        let r = backend::resolve(spelling);
        assert_eq!(r.backend.name(), expected, "spelling {spelling:?}");
        assert!(r.fallback.is_none());
    }
}

/// Unknown (and, where the host allows us to observe it, known-but-
/// unsupported) forced backends fall back to scalar with a counter tick
/// and a reason — not a panic.
#[test]
fn forced_unusable_backend_falls_back_with_counter_not_panic() {
    let _t = trace_guard();
    trace::enable();
    trace::reset();

    let r = backend::resolve(Some("tpu-v9"));
    assert_eq!(r.backend.name(), "scalar");
    let reason = r.fallback.expect("unknown name must report a fallback");
    assert!(reason.contains("unknown backend 'tpu-v9'"), "got: {reason}");

    for b in backend::all() {
        if !b.supported() {
            let r = backend::resolve(Some(b.name()));
            assert_eq!(r.backend.name(), "scalar");
            let reason = r
                .fallback
                .expect("unsupported backend must report a fallback");
            assert!(reason.contains("not supported"), "got: {reason}");
        }
    }

    let snap = trace::snapshot();
    trace::reset();
    trace::disable();
    assert!(
        counter(&snap, "tensor.backend.forced_fallbacks") >= 1,
        "fallback must tick tensor.backend.forced_fallbacks"
    );
}

/// When CI runs this suite under `TENSOR_BACKEND=scalar|simd`, the
/// process-wide selection must match the variable (or have fallen back to
/// scalar if the host cannot run the forced backend).
#[test]
fn active_backend_honors_forced_env() {
    let active = backend::active().name();
    match std::env::var("TENSOR_BACKEND").ok().as_deref() {
        None | Some("") | Some("auto") => {
            let expected = backend::resolve(None).backend.name();
            assert_eq!(
                active, expected,
                "auto selection must pick the best supported backend"
            );
        }
        Some(forced) => {
            let expected = backend::resolve(Some(forced)).backend.name();
            assert_eq!(active, expected, "TENSOR_BACKEND={forced} was not honoured");
        }
    }
}

/// Every f32 dispatch records the chosen backend and per-shape algorithm.
#[test]
fn matmul_records_backend_and_algo_counters() {
    let a = random_tensor(4, 8, 11);
    let b = random_tensor(8, 16, 12);
    let at = random_tensor(8, 4, 13);
    let bt = random_tensor(16, 8, 14);

    let _t = trace_guard();
    trace::enable();
    trace::reset();
    with_backend("scalar", || {
        let _ = matmul(&a, &b);
        let _ = matmul_at_b(&at, &b);
        let _ = matmul_a_bt(&a, &bt);
    });
    let snap = trace::snapshot();
    trace::reset();
    assert_eq!(counter(&snap, "tensor.backend.ops.scalar"), 3);
    assert_eq!(counter(&snap, "tensor.backend.ops.simd"), 0);
    assert_eq!(counter(&snap, "tensor.backend.algo.scalar_reg_tile"), 1);
    assert_eq!(counter(&snap, "tensor.backend.algo.scalar_stream"), 1);
    assert_eq!(counter(&snap, "tensor.backend.algo.scalar_row_dot"), 1);

    if backend::all()
        .into_iter()
        .any(|b| b.name() == "simd" && b.supported())
    {
        trace::reset();
        with_backend("simd", || {
            let _ = matmul(&a, &b); // n = 16: a broadcast kernel (256 or 512 per CPU width)
            let _ = matmul_a_bt(&a, &bt); // k = 8: the SIMD row-dot kernel
        });
        let snap = trace::snapshot();
        trace::reset();
        assert_eq!(counter(&snap, "tensor.backend.ops.simd"), 2);
        assert_eq!(counter(&snap, "tensor.backend.ops.scalar"), 0);
        let broadcasts = counter(&snap, "tensor.backend.algo.simd_broadcast256")
            + counter(&snap, "tensor.backend.algo.simd_broadcast512");
        assert_eq!(
            broadcasts, 1,
            "a_b on n=16 must use a SIMD broadcast kernel"
        );
        assert_eq!(counter(&snap, "tensor.backend.algo.simd_row_dot256"), 1);
    }
    trace::disable();
}

/// Per-shape selection: the SIMD backend routes shapes narrower than its
/// vector width to the scalar kernels instead of running masked everywhere.
#[test]
fn simd_backend_selects_scalar_algos_for_narrow_shapes() {
    let Some(simd) = backend::all().into_iter().find(|b| b.name() == "simd") else {
        panic!("simd backend must be registered even when unsupported");
    };
    if !simd.supported() {
        return;
    }
    assert_eq!(
        simd.select(&MatmulDesc::a_b(4, 4, 2)),
        MatmulAlgo::ScalarRegTile
    );
    assert_eq!(
        simd.select(&MatmulDesc::at_b(4, 4, 2)),
        MatmulAlgo::ScalarStream
    );
    assert_eq!(
        simd.select(&MatmulDesc::a_bt(4, 2, 4)),
        MatmulAlgo::ScalarRowDot
    );
    // Wide shapes go to the vector kernels.
    assert!(matches!(
        simd.select(&MatmulDesc::a_b(4, 4, 64)),
        MatmulAlgo::SimdBroadcast256 | MatmulAlgo::SimdBroadcast512
    ));
    assert_eq!(
        simd.select(&MatmulDesc::a_bt(4, 64, 4)),
        MatmulAlgo::SimdRowDot256
    );
}

/// The int8 path shares the descriptor API: dispatches record a quant
/// algorithm counter, and — since both int8 kernels accumulate exact
/// integers — the backend choice never changes the quantized result.
#[test]
fn quant_dispatch_records_algo_and_is_backend_invariant() {
    let a = random_tensor(3, 32, 21);
    let w = QuantMatrix::quantize(&random_tensor(32, 8, 22));

    let _t = trace_guard();
    trace::enable();
    trace::reset();
    let scalar_out = with_backend("scalar", || quant_matmul(&a, &w));
    let snap = trace::snapshot();
    trace::reset();
    assert_eq!(
        counter(&snap, "tensor.backend.algo.quant_portable"),
        1,
        "scalar backend must always run the portable int8 kernel"
    );

    if backend::all()
        .into_iter()
        .any(|b| b.name() == "simd" && b.supported())
    {
        trace::reset();
        let simd_out = with_backend("simd", || quant_matmul(&a, &w));
        let snap = trace::snapshot();
        trace::reset();
        let portable = counter(&snap, "tensor.backend.algo.quant_portable");
        let vnni = counter(&snap, "tensor.backend.algo.quant_vnni");
        assert_eq!(portable + vnni, 1, "exactly one quant algo per dispatch");
        assert_bits_equal("quant scalar-vs-simd", &scalar_out, &simd_out);
    }
    trace::disable();
}

#[test]
#[should_panic(expected = "unknown tensor backend")]
fn with_backend_panics_on_unknown_names() {
    with_backend("npu", || ());
}
