//! Property/differential tests for the parallel matmul kernels.
//!
//! The pool's contract is *determinism*: every kernel must produce
//! bit-identical output no matter how many threads split the tiles, and
//! the `_into` variants must match the allocating ones exactly. These
//! tests sweep explicit thread counts (1, 2, 4) over ragged shapes —
//! primes, single rows/columns, sizes smaller than the thread count —
//! where tile claiming is most likely to go wrong, and differentially
//! check the threads=1 path against a naive triple loop.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{
    matmul_a_bt, matmul_a_bt_into, matmul_a_bt_with_threads, matmul_at_b, matmul_at_b_into,
    matmul_at_b_with_threads, matmul_into, matmul_with_threads, Initializer, Tensor,
};

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Shapes that stress tile boundaries: 1, primes, and a couple of sizes
/// around the blocking factor.
fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(3),
        Just(5),
        Just(7),
        Just(13),
        Just(17),
        Just(31)
    ]
}

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Initializer::Uniform(2.0).init(rows, cols, &mut rng)
}

/// Naive `a × b` with the same per-cell accumulation order as the blocked
/// kernel (k ascending), so threads=1 output can be compared bit-exactly.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_bits_equal(label: &str, reference: &Tensor, got: &Tensor) {
    assert_eq!(reference.shape(), got.shape(), "{label}: shape mismatch");
    for (i, (r, g)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(
            r.to_bits(),
            g.to_bits(),
            "{label}: element {i} differs: {r} vs {g}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_matmul_is_bit_identical_across_threads(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x9e37);
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_with_threads(&a, &b, threads);
            assert_bits_equal(&format!("a_b {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
    }

    #[test]
    fn parallel_at_b_is_bit_identical_across_threads(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        // a is stored transposed: (k × m) input computing (m × n) output
        let a = random_tensor(k, m, seed);
        let b = random_tensor(k, n, seed ^ 0x9e37);
        let serial = matmul_at_b_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_at_b_with_threads(&a, &b, threads);
            assert_bits_equal(&format!("at_b {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
    }

    #[test]
    fn parallel_a_bt_is_bit_identical_across_threads(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(n, k, seed ^ 0x9e37);
        let serial = matmul_a_bt_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_a_bt_with_threads(&a, &b, threads);
            assert_bits_equal(&format!("a_bt {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
    }

    #[test]
    fn into_variants_match_allocating_variants(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x517c);
        let bt = b.transpose();
        let at = a.transpose();

        // out buffers start poisoned to catch kernels that accumulate
        // instead of overwriting
        let mut out = Tensor::full(m, n, f32::NAN);
        matmul_into(&a, &b, &mut out);
        assert_bits_equal("matmul_into", &matmul_with_threads(&a, &b, 1), &out);

        let mut out = Tensor::full(m, n, f32::NAN);
        matmul_at_b_into(&at, &b, &mut out);
        assert_bits_equal("matmul_at_b_into", &matmul_at_b(&at, &b), &out);

        let mut out = Tensor::full(m, n, f32::NAN);
        matmul_a_bt_into(&a, &bt, &mut out);
        assert_bits_equal("matmul_a_bt_into", &matmul_a_bt(&a, &bt), &out);
    }

    #[test]
    fn serial_kernel_matches_naive_reference(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x2545);
        let blocked = matmul_with_threads(&a, &b, 1);
        let naive = naive_matmul(&a, &b);
        // same accumulation order → differential check can be exact
        assert_bits_equal(&format!("naive {m}x{k}x{n}"), &naive, &blocked);
    }
}

/// Deterministic (non-proptest) sweep over a fixed ragged-shape grid so a
/// failure reproduces without a proptest seed.
#[test]
fn fixed_ragged_grid_is_thread_invariant() {
    for &(m, k, n) in &[
        (1, 1, 1),
        (1, 31, 1),
        (31, 1, 31),
        (2, 17, 5),
        (13, 13, 13),
        (7, 64, 3),
        (64, 7, 64),
    ] {
        let a = random_tensor(m, k, (m * 1000 + k * 10 + n) as u64);
        let b = random_tensor(k, n, (n * 1000 + m) as u64);
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_with_threads(&a, &b, threads);
            assert_bits_equal(
                &format!("grid {m}x{k}x{n} threads={threads}"),
                &serial,
                &par,
            );
        }
    }
}
