//! Property/differential tests for the parallel matmul kernels.
//!
//! The pool's contract is *determinism*: every kernel must produce
//! bit-identical output no matter how many threads split the tiles, and
//! the `_into` variants must match the allocating ones exactly. These
//! tests sweep explicit thread counts (1, 2, 4) over ragged and degenerate
//! shapes — zero dimensions, `k = 0`, primes, single rows/columns, sizes
//! smaller than the thread count, and sizes straddling the SIMD vector
//! widths — where tile claiming and masked tails are most likely to go
//! wrong, and differentially check the threads=1 path against a naive
//! triple loop.
//!
//! Shapes and references live in `common/mod.rs` and are shared with the
//! backend conformance harness (`backend_conformance.rs`), so this suite
//! exercises whichever backend is active (`TENSOR_BACKEND` — CI sweeps
//! both) while that one pins backends explicitly.

mod common;

use common::*;
use proptest::prelude::*;
use tensor::{
    matmul_a_bt, matmul_a_bt_into, matmul_a_bt_with_threads, matmul_at_b, matmul_at_b_into,
    matmul_at_b_with_threads, matmul_into, matmul_with_threads, Tensor,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_matmul_is_bit_identical_across_threads(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x9e37);
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_with_threads(&a, &b, threads);
            assert_bits_equal(&format!("a_b {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
    }

    #[test]
    fn parallel_at_b_is_bit_identical_across_threads(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..1000,
    ) {
        // a is stored transposed: (k × m) input computing (m × n) output
        let a = random_tensor(k, m, seed);
        let b = random_tensor(k, n, seed ^ 0x9e37);
        let serial = matmul_at_b_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_at_b_with_threads(&a, &b, threads);
            assert_bits_equal(&format!("at_b {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
    }

    #[test]
    fn parallel_a_bt_is_bit_identical_across_threads(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(n, k, seed ^ 0x9e37);
        let serial = matmul_a_bt_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_a_bt_with_threads(&a, &b, threads);
            assert_bits_equal(&format!("a_bt {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
    }

    #[test]
    fn into_variants_match_allocating_variants(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x517c);
        let bt = b.transpose();
        let at = a.transpose();

        // out buffers start poisoned to catch kernels that accumulate
        // instead of overwriting
        let mut out = Tensor::full(m, n, f32::NAN);
        matmul_into(&a, &b, &mut out);
        assert_bits_equal("matmul_into", &matmul_with_threads(&a, &b, 1), &out);

        let mut out = Tensor::full(m, n, f32::NAN);
        matmul_at_b_into(&at, &b, &mut out);
        assert_bits_equal("matmul_at_b_into", &matmul_at_b(&at, &b), &out);

        let mut out = Tensor::full(m, n, f32::NAN);
        matmul_a_bt_into(&a, &bt, &mut out);
        assert_bits_equal("matmul_a_bt_into", &matmul_a_bt(&a, &bt), &out);
    }

    #[test]
    fn serial_kernel_matches_naive_reference(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let b = random_tensor(k, n, seed ^ 0x2545);
        let blocked = matmul_with_threads(&a, &b, 1);
        let naive = naive_a_b(&a, &b);
        // same accumulation order → differential check can be exact
        assert_bits_equal(&format!("naive {m}x{k}x{n}"), &naive, &blocked);
    }
}

/// Deterministic (non-proptest) sweep over the fixed shape grid so a
/// failure reproduces without a proptest seed.
#[test]
fn fixed_ragged_grid_is_thread_invariant() {
    for &(m, k, n) in &FIXED_SHAPE_GRID {
        let a = random_tensor(m, k, (m * 1000 + k * 10 + n) as u64);
        let b = random_tensor(k, n, (n * 1000 + m) as u64);
        let serial = matmul_with_threads(&a, &b, 1);
        for threads in THREAD_SWEEP {
            let par = matmul_with_threads(&a, &b, threads);
            assert_bits_equal(
                &format!("grid {m}x{k}x{n} threads={threads}"),
                &serial,
                &par,
            );
        }
    }
}
