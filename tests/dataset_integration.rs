//! Integration tests over the synthetic RecipeDB: Table II proportions,
//! Table III spectrum shape, split properties, serialization.

use recipedb::{
    cumulative_spectrum, generate, train_val_test_split, CuisineId, DatasetStats, EntityKind,
    GeneratorConfig, NUM_CUISINES,
};

fn small_dataset() -> (recipedb::Dataset, DatasetStats) {
    let config = GeneratorConfig {
        seed: 99,
        scale: 0.02,
        ..Default::default()
    };
    let dataset = generate(&config);
    let stats = DatasetStats::compute(&dataset);
    (dataset, stats)
}

#[test]
fn table2_proportions_hold_at_reduced_scale() {
    let (_, stats) = small_dataset();
    for cuisine in CuisineId::all() {
        let expected = ((cuisine.info().paper_count as f64 * 0.02).round() as usize).max(10);
        assert_eq!(
            stats.cuisine_count(cuisine),
            expected,
            "count mismatch for {}",
            cuisine.name()
        );
    }
}

#[test]
fn all_26_cuisines_are_present() {
    let (_, stats) = small_dataset();
    assert_eq!(stats.per_cuisine.len(), NUM_CUISINES);
    assert!(stats.per_cuisine.iter().all(|&c| c >= 10));
}

#[test]
fn spectrum_tail_scales_with_corpus() {
    let (_, stats) = small_dataset();
    let (_, low) = cumulative_spectrum(&stats);
    // at 2% scale the hapax band shrinks, but the tail must still dwarf
    // the head: Zipf shape is scale-invariant
    let hapax = low.iter().find(|r| r.bound == 2).unwrap().count;
    assert!(hapax > 100, "hapax features {hapax} — tail missing");
    let (high, _) = cumulative_spectrum(&stats);
    let head = high.iter().find(|r| r.bound == 1_000).unwrap().count;
    assert!(
        hapax > head * 10,
        "tail ({hapax}) should dwarf head ({head})"
    );
}

#[test]
fn most_frequent_feature_is_the_process_add() {
    let (dataset, stats) = small_dataset();
    let top = stats.top_features(1)[0];
    assert_eq!(dataset.table.name(top.0), "add");
}

#[test]
fn sequences_keep_kind_order() {
    let (dataset, _) = small_dataset();
    for recipe in dataset.recipes.iter().take(100) {
        let kinds: Vec<EntityKind> = recipe
            .tokens
            .iter()
            .map(|&t| dataset.table.kind(t))
            .collect();
        let first_ut = kinds
            .iter()
            .position(|&k| k == EntityKind::Utensil)
            .unwrap_or(kinds.len());
        assert!(
            !kinds[first_ut..].contains(&EntityKind::Process),
            "utensils must come after processes"
        );
    }
}

#[test]
fn split_is_disjoint_stratified_7_1_2() {
    let (dataset, _) = small_dataset();
    let split = train_val_test_split(&dataset, 1);
    assert_eq!(split.len(), dataset.len());

    let mut seen = vec![false; dataset.len()];
    for &i in split.train.iter().chain(&split.val).chain(&split.test) {
        assert!(!seen[i], "index {i} appears twice");
        seen[i] = true;
    }

    let ratio = split.test.len() as f64 / dataset.len() as f64;
    assert!((0.17..0.23).contains(&ratio), "test ratio {ratio}");
    let ratio = split.val.len() as f64 / dataset.len() as f64;
    assert!((0.07..0.13).contains(&ratio), "val ratio {ratio}");
}

#[test]
fn jsonl_roundtrip_preserves_corpus() {
    let (dataset, _) = small_dataset();
    let path = std::env::temp_dir().join("cuisine_integration_roundtrip.jsonl");
    recipedb::write_jsonl(&dataset, &path).unwrap();
    let back = recipedb::read_jsonl(&path).unwrap();
    assert_eq!(back.recipes.len(), dataset.recipes.len());
    assert_eq!(back.recipes[0], dataset.recipes[0]);
    assert_eq!(back.table.len(), dataset.table.len());
    std::fs::remove_file(&path).unwrap();
}

/// Full paper-scale generation: Table II exact, Table III anchors within
/// tolerance. Slow (~1 min), run with `cargo test -- --ignored`.
#[test]
#[ignore = "paper-scale generation takes about a minute"]
fn paper_scale_tables_are_reproduced() {
    let config = GeneratorConfig {
        seed: 2020,
        scale: 1.0,
        ..Default::default()
    };
    let dataset = generate(&config);
    let stats = DatasetStats::compute(&dataset);

    // Table II: exact by construction
    for cuisine in CuisineId::all() {
        assert_eq!(
            stats.cuisine_count(cuisine),
            cuisine.info().paper_count as usize
        );
    }

    // Table III low rows: exact by quota injection
    let (high, low) = cumulative_spectrum(&stats);
    for (got, paper) in low.iter().zip(recipedb::PAPER_TABLE3_LOW.iter()) {
        let tolerance = (paper.count as f64 * 0.02).max(50.0) as usize;
        assert!(
            got.count.abs_diff(paper.count) <= tolerance,
            "freq<{}: paper {} generated {}",
            paper.bound,
            paper.count,
            got.count
        );
    }
    // Table III high rows: within sampling tolerance
    for (got, paper) in high.iter().zip(recipedb::PAPER_TABLE3_HIGH.iter()) {
        let tolerance = (paper.count as f64 * 0.35).max(8.0) as usize;
        assert!(
            got.count.abs_diff(paper.count) <= tolerance,
            "freq>{}: paper {} generated {}",
            paper.bound,
            paper.count,
            got.count
        );
    }
}
