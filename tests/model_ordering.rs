//! The paper's headline shape: order-aware models beat bag-of-words models
//! on sequentially structured recipes. These tests run the real pipeline
//! at small scale, so they are slower than unit tests but still minutes.

use cuisine::{ModelKind, Pipeline, PipelineConfig, Scale};

/// The paper's qualitative Table IV ordering at small scale:
/// RoBERTa ≥ BERT > best statistical model, and LR the best statistical
/// model's neighbourhood. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "trains transformers; ~20+ minutes in release mode"]
fn transformers_beat_statistical_models() {
    let config = PipelineConfig::new(Scale::Small, 2020);
    let pipeline = Pipeline::prepare(&config);

    let logreg = pipeline.run(ModelKind::LogReg, &config);
    let bert = pipeline.run(ModelKind::Bert, &config);
    let roberta = pipeline.run(ModelKind::Roberta, &config);

    assert!(
        bert.report.accuracy > logreg.report.accuracy,
        "BERT {:.3} must beat LogReg {:.3}",
        bert.report.accuracy,
        logreg.report.accuracy
    );
    assert!(
        roberta.report.accuracy >= bert.report.accuracy - 0.02,
        "RoBERTa {:.3} must be at least competitive with BERT {:.3}",
        roberta.report.accuracy,
        bert.report.accuracy
    );
}

/// Destroying token order must hurt an order-aware model but leave a
/// bag-of-words model unchanged — the paper's central hypothesis, checked
/// cheaply with Naive Bayes (invariant by construction) as the control.
#[test]
fn shuffling_tokens_cannot_change_bag_models() {
    use ml::{Classifier, MultinomialNb};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut config = PipelineConfig::new(Scale::Custom(0.005), 3);
    config.models.vocab_max_size = 800;
    let pipeline = Pipeline::prepare(&config);
    let (train_x, _, test_x, vectorizer) = pipeline.tfidf_features(&config);
    let train_y = pipeline.labels_of(&pipeline.data.split.train);

    let mut nb = MultinomialNb::default();
    nb.fit(&train_x, &train_y);
    let baseline = nb.predict(&test_x);

    // shuffle every test document's tokens and re-vectorize
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let shuffled_docs: Vec<Vec<&str>> = pipeline
        .data
        .split
        .test
        .iter()
        .map(|&i| {
            let mut doc: Vec<&str> = pipeline.data.docs[i].iter().map(String::as_str).collect();
            doc.shuffle(&mut rng);
            doc
        })
        .collect();
    let shuffled_x = vectorizer.transform(&shuffled_docs);
    let shuffled = nb.predict(&shuffled_x);

    assert_eq!(
        baseline, shuffled,
        "bag-of-words predictions must ignore order"
    );
}

/// Within-continent confusions dominate: the generator plants shared
/// signature ingredients inside each continent, so a bag model's mistakes
/// should disproportionately stay within the gold continent.
#[test]
fn confusions_concentrate_within_continents() {
    use recipedb::CuisineId;

    let mut config = PipelineConfig::new(Scale::Custom(0.01), 4);
    config.models.vocab_max_size = 1_500;
    let pipeline = Pipeline::prepare(&config);
    let result = pipeline.run(ModelKind::LogReg, &config);

    let m = &result.report.confusion;
    let mut within = 0u64;
    let mut across = 0u64;
    for g in 0..26 {
        for p in 0..26 {
            if g == p {
                continue;
            }
            let count = m.count(g, p);
            let same = CuisineId(g as u8).info().continent == CuisineId(p as u8).info().continent;
            if same {
                within += count;
            } else {
                across += count;
            }
        }
    }
    // 26 cuisines over 6 continents: if confusions were uniform, ~17%
    // would stay in-continent. The planted structure should exceed that.
    let frac = within as f64 / (within + across).max(1) as f64;
    assert!(
        frac > 0.25,
        "within-continent confusion fraction only {frac:.3}"
    );
}
