//! Integration tests for the application layer: recommendation quality and
//! generation plausibility on a real (synthetic) corpus.

use cuisine::apps::{MarkovRecipeGenerator, RecipeRecommender};
use cuisine::{Pipeline, PipelineConfig, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recipedb::{CuisineId, EntityKind};

fn pipeline() -> (Pipeline, PipelineConfig) {
    let mut config = PipelineConfig::new(Scale::Custom(0.008), 13);
    config.models.vocab_max_size = 1_200;
    (Pipeline::prepare(&config), config)
}

#[test]
fn recommendations_prefer_same_cuisine() {
    let (p, config) = pipeline();
    let (train_x, _, _, _) = p.tfidf_features(&config);
    let rec = RecipeRecommender::fit(&train_x);

    // over a sample of query recipes, the top-3 recommendations should be
    // same-cuisine far more often than the ~14% majority-class chance
    let mut same = 0usize;
    let mut total = 0usize;
    for (pos, &recipe_idx) in p.data.split.train.iter().enumerate().take(60) {
        let query_cuisine = p.data.labels[recipe_idx];
        for (row, _) in rec.recommend_for_indexed(&train_x, pos, 3) {
            let rec_idx = p.data.split.train[row];
            if p.data.labels[rec_idx] == query_cuisine {
                same += 1;
            }
            total += 1;
        }
    }
    let frac = same as f64 / total.max(1) as f64;
    assert!(frac > 0.35, "same-cuisine fraction only {frac:.3}");
}

#[test]
fn generated_recipes_look_like_recipes() {
    let (p, _) = pipeline();
    let model = MarkovRecipeGenerator::fit(&p.data.dataset, Default::default());
    let mut rng = StdRng::seed_from_u64(5);
    let italian = CuisineId::all().find(|c| c.name() == "Italian").unwrap();
    for _ in 0..10 {
        let tokens = model.generate(italian, &mut rng);
        assert!(tokens.len() >= 5, "recipe too short: {}", tokens.len());
        // a plausible recipe mixes ingredients and processes
        let kinds: Vec<EntityKind> = tokens
            .iter()
            .map(|&t| p.data.dataset.table.kind(t))
            .collect();
        assert!(kinds.contains(&EntityKind::Ingredient));
        assert!(kinds.contains(&EntityKind::Process));
    }
}

#[test]
fn generator_reuses_corpus_vocabulary_only() {
    let (p, _) = pipeline();
    let model = MarkovRecipeGenerator::fit(&p.data.dataset, Default::default());
    let mut rng = StdRng::seed_from_u64(6);
    // tokens must come from entities that actually occur in the corpus
    let mut corpus_tokens = std::collections::HashSet::new();
    for r in &p.data.dataset.recipes {
        corpus_tokens.extend(r.tokens.iter().copied());
    }
    for cuisine in CuisineId::all().take(5) {
        for tok in model.generate(cuisine, &mut rng) {
            assert!(
                corpus_tokens.contains(&tok),
                "generated unseen entity {tok:?}"
            );
        }
    }
}
