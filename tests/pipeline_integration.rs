//! End-to-end pipeline tests: every statistical model trains and beats
//! chance on a tiny corpus; the neural path runs end to end.

use cuisine::{ModelKind, Pipeline, PipelineConfig, Scale};

fn tiny() -> (Pipeline, PipelineConfig) {
    let mut config = PipelineConfig::new(Scale::Custom(0.005), 5);
    config.models.vocab_max_size = 800;
    config.models.rf_trees = 10;
    (Pipeline::prepare(&config), config)
}

/// Chance accuracy on the (imbalanced) 26-class task is the largest class
/// prior, roughly 14%.
const CHANCE: f64 = 0.16;

#[test]
fn logreg_beats_chance() {
    let (pipeline, config) = tiny();
    let result = pipeline.run(ModelKind::LogReg, &config);
    assert!(
        result.report.accuracy > CHANCE,
        "LogReg accuracy {} not above chance",
        result.report.accuracy
    );
    assert!(result.report.loss.is_some());
}

#[test]
fn naive_bayes_beats_chance() {
    let (pipeline, config) = tiny();
    let result = pipeline.run(ModelKind::NaiveBayes, &config);
    assert!(
        result.report.accuracy > CHANCE,
        "NB accuracy {}",
        result.report.accuracy
    );
}

#[test]
fn svm_beats_chance() {
    let (pipeline, config) = tiny();
    let result = pipeline.run(ModelKind::SvmLinear, &config);
    assert!(
        result.report.accuracy > CHANCE,
        "SVM accuracy {}",
        result.report.accuracy
    );
}

#[test]
fn random_forest_beats_chance() {
    let (pipeline, config) = tiny();
    let result = pipeline.run(ModelKind::RandomForest, &config);
    assert!(
        result.report.accuracy > CHANCE,
        "RF accuracy {}",
        result.report.accuracy
    );
}

#[test]
fn lstm_trains_end_to_end() {
    let (pipeline, mut config) = tiny();
    // keep it quick: small model, few epochs — we check the plumbing, not
    // the accuracy
    config.models.lstm.hidden = 32;
    config.models.lstm.emb_dim = 16;
    config.models.lstm_trainer.epochs = 2;
    let result = pipeline.run(ModelKind::Lstm, &config);
    let history = result.history.expect("LSTM must record a history");
    assert_eq!(history.epochs.len(), 2);
    assert!(history.epochs.iter().all(|e| e.train_loss.is_finite()));
    assert!(result.report.accuracy > 0.0);
}

#[test]
fn bert_pretrains_and_finetunes_end_to_end() {
    let (pipeline, mut config) = tiny();
    config.models.bert.d_model = 32;
    config.models.bert.d_ff = 64;
    config.models.bert.layers = 1;
    config.models.bert.heads = 2;
    config.models.bert_pretrain_epochs = 1;
    config.models.finetune.epochs = 1;
    let result = pipeline.run(ModelKind::Bert, &config);
    let pre = result
        .pretrain_losses
        .expect("BERT must record pretrain losses");
    assert_eq!(pre.len(), 1);
    assert!(pre[0].is_finite() && pre[0] > 0.0);
    assert!(result.history.is_some());
}

#[test]
fn reports_are_consistent_between_runs() {
    let (pipeline, config) = tiny();
    let a = pipeline.run(ModelKind::NaiveBayes, &config);
    let b = pipeline.run(ModelKind::NaiveBayes, &config);
    assert_eq!(
        a.report.accuracy, b.report.accuracy,
        "NB must be deterministic"
    );
}

#[test]
fn adaboost_variant_runs() {
    let (pipeline, config) = tiny();
    let result = cuisine::run_adaboost(&pipeline, &config);
    assert!(result.report.accuracy > 0.05);
}
