//! Differential kernel-conformance harness for the tensor device backends.
//!
//! Every backend registered in `tensor::backend::all()` must reproduce the
//! naive reference implementation of the accumulation contract **bit for
//! bit**, for every op, across thread counts {1, 2, 4} *and* the pooled
//! auto path — on ragged, degenerate (zero-dim, `k = 0`, single-row/col),
//! vector-width-straddling, aliased, and non-finite inputs. No SIMD kernel
//! lands without passing this suite.
//!
//! Every assertion label carries the exact repro: op, shape, backend,
//! thread count, and the RNG seed that generated the operands, so a
//! failure reproduces with a one-line test. Shapes come from the same
//! generator as `tensor_properties.rs` (see `common/mod.rs`), so any shape
//! that suite finds adversarial is exercised here too.
//!
//! Non-finite inputs inject exactly **one** special value (`NaN`, `±inf`,
//! or `-0.0`) per case, so every accumulation chain contains at most one
//! non-finite source and the result is deterministic regardless of how
//! NaN payloads propagate through commuted operands (see
//! `docs/BACKENDS.md`).

mod common;

use common::*;
use proptest::prelude::*;
use tensor::{
    backend, matmul, matmul_a_bt, matmul_a_bt_with_threads, matmul_at_b, matmul_at_b_with_threads,
    matmul_with_threads, softmax_rows, with_backend, MatmulDesc, Tensor,
};

/// Supported backends only: unsupported entries (e.g. the SIMD backend on
/// a non-AVX2 host) are resolve-time fallbacks, exercised separately in
/// `backend_selection.rs`.
fn supported_backends() -> Vec<&'static str> {
    backend::all()
        .into_iter()
        .filter(|b| b.supported())
        .map(|b| b.name())
        .collect()
}

/// Runs all three products on every supported backend × thread count
/// (plus the pooled auto path) and compares each result bitwise against
/// the naive references.
fn check_all_ops(tag: &str, a: &Tensor, b: &Tensor, at: &Tensor, bt: &Tensor) {
    let (m, k) = a.shape();
    let n = b.cols();
    let ref_ab = naive_a_b(a, b);
    let ref_atb = naive_at_b(at, b);
    let ref_abt = naive_a_bt(a, bt);
    for name in supported_backends() {
        with_backend(name, || {
            for threads in THREAD_SWEEP {
                let ctx = format!("{tag} {m}x{k}x{n} backend={name} threads={threads}");
                assert_bits_equal(
                    &format!("a_b {ctx}"),
                    &ref_ab,
                    &matmul_with_threads(a, b, threads),
                );
                assert_bits_equal(
                    &format!("at_b {ctx}"),
                    &ref_atb,
                    &matmul_at_b_with_threads(at, b, threads),
                );
                assert_bits_equal(
                    &format!("a_bt {ctx}"),
                    &ref_abt,
                    &matmul_a_bt_with_threads(a, bt, threads),
                );
            }
            let ctx = format!("{tag} {m}x{k}x{n} backend={name} auto");
            assert_bits_equal(&format!("a_b {ctx}"), &ref_ab, &matmul(a, b));
            assert_bits_equal(&format!("at_b {ctx}"), &ref_atb, &matmul_at_b(at, b));
            assert_bits_equal(&format!("a_bt {ctx}"), &ref_abt, &matmul_a_bt(a, bt));
        });
    }
}

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor, Tensor, Tensor) {
    (
        random_tensor(m, k, seed),
        random_tensor(k, n, seed ^ 0x9e37),
        random_tensor(k, m, seed ^ 0x79b9),
        random_tensor(n, k, seed ^ 0x517c),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline differential property: every backend × thread count
    /// equals the naive reference bitwise on ragged/degenerate shapes.
    #[test]
    fn backends_match_naive_reference_bitwise(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..1000,
    ) {
        let (a, b, at, bt) = operands(m, k, n, seed);
        check_all_ops(&format!("seed={seed}"), &a, &b, &at, &bt);
    }

    /// One non-finite or signed-zero value anywhere in either operand must
    /// propagate identically through every backend. `special` encodes
    /// which value × which operand; `pos` picks the element.
    #[test]
    fn single_non_finite_value_is_backend_invariant(
        m in conformance_dim(), k in conformance_dim(), n in conformance_dim(),
        seed in 0u64..500, special in 0usize..8, pos in 0usize..10_000,
    ) {
        const SPECIALS: [f32; 4] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0];
        let val = SPECIALS[special % 4];
        let into_a = special < 4;
        let (mut a, mut b, mut at, mut bt) = operands(m, k, n, seed);
        // Inject into the corresponding operand of each product so every
        // op sees exactly one special value.
        for t in if into_a { [&mut a, &mut at] } else { [&mut b, &mut bt] } {
            let len = t.len();
            if len > 0 {
                t.as_mut_slice()[pos % len] = val;
            }
        }
        let tag = format!("special={val} into_a={into_a} pos={pos} seed={seed}");
        check_all_ops(&tag, &a, &b, &at, &bt);
    }
}

/// Deterministic sweep over the fixed degenerate/width-straddling grid, so
/// the core conformance property also reproduces without a proptest seed.
#[test]
fn fixed_shape_grid_is_backend_invariant() {
    for &(m, k, n) in &FIXED_SHAPE_GRID {
        let (a, b, at, bt) = operands(m, k, n, (m * 10_000 + k * 100 + n) as u64);
        check_all_ops("grid", &a, &b, &at, &bt);
    }
}

/// `k = 0` is an empty accumulation: every output element must be exactly
/// `+0.0` (bit pattern zero) on every backend — the fill path, not the
/// accumulate path, produces it.
#[test]
fn empty_shared_dimension_yields_positive_zero() {
    for name in supported_backends() {
        with_backend(name, || {
            for threads in THREAD_SWEEP {
                for (label, out) in [
                    (
                        "a_b",
                        matmul_with_threads(&Tensor::zeros(3, 0), &Tensor::zeros(0, 5), threads),
                    ),
                    (
                        "at_b",
                        matmul_at_b_with_threads(
                            &Tensor::zeros(0, 3),
                            &Tensor::zeros(0, 5),
                            threads,
                        ),
                    ),
                    (
                        "a_bt",
                        matmul_a_bt_with_threads(
                            &Tensor::zeros(3, 0),
                            &Tensor::zeros(5, 0),
                            threads,
                        ),
                    ),
                ] {
                    assert_eq!(out.shape(), (3, 5), "{label} backend={name}");
                    for (i, v) in out.as_slice().iter().enumerate() {
                        assert_eq!(
                            v.to_bits(),
                            0,
                            "{label} backend={name} threads={threads}: element {i} is {v}, not +0.0"
                        );
                    }
                }
            }
        });
    }
}

/// The transposed products accept the *same* tensor as both operands
/// (`xᵀ·x` Gram matrices, `x·xᵀ` attention self-scores). The kernels read
/// both through shared borrows, so aliasing must be fully supported.
#[test]
fn transposed_aliasing_same_tensor_both_operands() {
    for &(rows, cols) in &[(9usize, 9usize), (17, 5), (5, 17), (1, 31), (16, 16)] {
        let x = random_tensor(rows, cols, (rows * 100 + cols) as u64);
        let ref_atb = naive_at_b(&x, &x); // xᵀ · x : cols × cols
        let ref_abt = naive_a_bt(&x, &x); // x · xᵀ : rows × rows
        for name in supported_backends() {
            with_backend(name, || {
                for threads in THREAD_SWEEP {
                    let ctx = format!("alias {rows}x{cols} backend={name} threads={threads}");
                    assert_bits_equal(
                        &format!("at_b {ctx}"),
                        &ref_atb,
                        &matmul_at_b_with_threads(&x, &x, threads),
                    );
                    assert_bits_equal(
                        &format!("a_bt {ctx}"),
                        &ref_abt,
                        &matmul_a_bt_with_threads(&x, &x, threads),
                    );
                }
            });
        }
    }
}

/// Descriptor edge cases: selection must handle degenerate descriptors
/// without panicking, and `mul_adds` must not overflow.
#[test]
fn descriptor_selection_handles_degenerate_shapes() {
    for backend in backend::all() {
        for desc in [
            MatmulDesc::a_b(0, 0, 0),
            MatmulDesc::a_b(1, 0, 17),
            MatmulDesc::at_b(1, 1, 1),
            MatmulDesc::a_bt(1, 7, 1),
            MatmulDesc::a_b(usize::MAX, usize::MAX, usize::MAX),
        ] {
            let algo = backend.select(&desc);
            let _ = algo.name(); // every selected algo has a stable name
        }
        assert_eq!(
            MatmulDesc::a_b(usize::MAX, usize::MAX, 2).mul_adds(),
            usize::MAX,
            "mul_adds must saturate, not overflow"
        );
    }
}

/// The one unsupported descriptor: `Aᵀ · Bᵀ` is provided by no backend and
/// must be rejected loudly at the descriptor, not silently miscomputed.
#[test]
#[should_panic(expected = "transpose_a && transpose_b")]
fn double_transpose_descriptor_is_rejected() {
    let desc = MatmulDesc {
        m: 2,
        k: 2,
        n: 2,
        transpose_a: true,
        transpose_b: true,
    };
    let _ = desc.op();
}

/// The elementwise ops routed through the backend trait must also be
/// backend-invariant (the default bodies are shared; any override must
/// stay bit-identical).
#[test]
fn softmax_is_backend_invariant() {
    for &(rows, cols) in &[(1usize, 1usize), (3, 7), (5, 0), (2, 33), (16, 16)] {
        let x = random_tensor(rows, cols, (rows * 31 + cols) as u64);
        let reference = with_backend("scalar", || softmax_rows(&x));
        for name in supported_backends() {
            let got = with_backend(name, || softmax_rows(&x));
            assert_bits_equal(
                &format!("softmax {rows}x{cols} backend={name}"),
                &reference,
                &got,
            );
        }
    }
}
