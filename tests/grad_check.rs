//! Finite-difference gradient checks for whole neural blocks.
//!
//! The unit tests inside `nn` check individual weight matrices; these
//! integration checks sweep *every* registered parameter of an attention
//! block and an unrolled LSTM layer against central finite differences.
//! f32 finite differences are noisy, so the tolerances are deliberately
//! loose (`eps` ~1e-2, relative tolerance ~5e-2 with an absolute floor
//! inside `gradient_check`) — what they catch is structurally wrong
//! backward rules (dropped terms, transposed operands), not rounding.

use autograd::{gradient_check, ParamStore};
use nn::{LstmCell, LstmLayer, MultiHeadAttention};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{Initializer, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

#[test]
fn attention_block_all_params_gradient_check() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "attn", 4, 2, &mut rng);
    let x = Initializer::Uniform(0.8).init(3, 4, &mut rng);

    let params: Vec<_> = store.ids().collect();
    assert_eq!(params.len(), 8, "4 projections × (weight + bias)");
    for target in params {
        let attn = attn.clone();
        let x = x.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(x.clone());
            let y = attn.forward(g, xv);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("attention: {e}"));
    }
}

#[test]
fn single_head_attention_gradient_check() {
    // heads == d_model exercises the per-head slicing at its extreme:
    // every head is one column wide
    let mut rng = StdRng::seed_from_u64(12);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "attn", 4, 4, &mut rng);
    let x = Initializer::Uniform(0.8).init(2, 4, &mut rng);

    for target in store.ids().collect::<Vec<_>>() {
        let attn = attn.clone();
        let x = x.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(x.clone());
            let y = attn.forward(g, xv);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("single-head attention: {e}"));
    }
}

#[test]
fn lstm_layer_unrolled_gradient_check() {
    // a 4-step unroll makes the gradient flow through the cell state
    // across time — the path most likely to lose a term
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let layer = LstmLayer::new(&mut store, "lstm", 3, 5, &mut rng);
    let xs = Initializer::Uniform(0.8).init(4, 3, &mut rng);

    let params: Vec<_> = store.ids().collect();
    assert_eq!(params.len(), 2, "fused gate weight + bias");
    for target in params {
        let layer = layer.clone();
        let xs = xs.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(xs.clone());
            let hs = layer.forward(g, xv);
            let sq = g.mul(hs, hs);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("lstm layer: {e}"));
    }
}

#[test]
fn lstm_cell_saturated_gates_gradient_check() {
    // large-magnitude state pushes the sigmoid/tanh gates toward their
    // flat regions, where wrong backward rules hide behind tiny gradients;
    // the relative tolerance inside gradient_check keeps this meaningful
    let mut rng = StdRng::seed_from_u64(14);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "cell", 3, 3, &mut rng);
    let x = Initializer::Uniform(2.5).init(1, 3, &mut rng);

    for target in store.ids().collect::<Vec<_>>() {
        let cell = cell.clone();
        let x = x.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(x.clone());
            let h0 = g.constant(Tensor::full(1, 3, 0.9));
            let c0 = g.constant(Tensor::full(1, 3, 2.0));
            let (h1, c1) = cell.step(g, xv, h0, c0);
            let (h2, _) = cell.step(g, h1, h1, c1);
            let sq = g.mul(h2, h2);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("saturated lstm cell: {e}"));
    }
}
