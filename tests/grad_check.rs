//! Finite-difference gradient checks for whole neural blocks.
//!
//! The unit tests inside `nn` check individual weight matrices; these
//! integration checks sweep *every* registered parameter of an attention
//! block and an unrolled LSTM layer against central finite differences.
//! f32 finite differences are noisy, so the tolerances are deliberately
//! loose (`eps` ~1e-2, relative tolerance ~5e-2 with an absolute floor
//! inside `gradient_check`) — what they catch is structurally wrong
//! backward rules (dropped terms, transposed operands), not rounding.

//! The per-backend checks at the bottom re-run the attention and LSTM
//! sweeps pinned to each registered tensor backend (`with_backend`) and
//! additionally pin the *analytic* gradients bitwise across backends:
//! the backward pass is built from the same kernels as the forward pass,
//! so the backend determinism contract (docs/BACKENDS.md) extends to
//! training, not just inference.

use autograd::{gradient_check, Graph, ParamStore};
use nn::{LstmCell, LstmLayer, MultiHeadAttention};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{backend, with_backend, Initializer, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

#[test]
fn attention_block_all_params_gradient_check() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "attn", 4, 2, &mut rng);
    let x = Initializer::Uniform(0.8).init(3, 4, &mut rng);

    let params: Vec<_> = store.ids().collect();
    assert_eq!(params.len(), 8, "4 projections × (weight + bias)");
    for target in params {
        let attn = attn.clone();
        let x = x.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(x.clone());
            let y = attn.forward(g, xv);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("attention: {e}"));
    }
}

#[test]
fn single_head_attention_gradient_check() {
    // heads == d_model exercises the per-head slicing at its extreme:
    // every head is one column wide
    let mut rng = StdRng::seed_from_u64(12);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "attn", 4, 4, &mut rng);
    let x = Initializer::Uniform(0.8).init(2, 4, &mut rng);

    for target in store.ids().collect::<Vec<_>>() {
        let attn = attn.clone();
        let x = x.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(x.clone());
            let y = attn.forward(g, xv);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("single-head attention: {e}"));
    }
}

#[test]
fn lstm_layer_unrolled_gradient_check() {
    // a 4-step unroll makes the gradient flow through the cell state
    // across time — the path most likely to lose a term
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let layer = LstmLayer::new(&mut store, "lstm", 3, 5, &mut rng);
    let xs = Initializer::Uniform(0.8).init(4, 3, &mut rng);

    let params: Vec<_> = store.ids().collect();
    assert_eq!(params.len(), 2, "fused gate weight + bias");
    for target in params {
        let layer = layer.clone();
        let xs = xs.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(xs.clone());
            let hs = layer.forward(g, xv);
            let sq = g.mul(hs, hs);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("lstm layer: {e}"));
    }
}

#[test]
fn lstm_cell_saturated_gates_gradient_check() {
    // large-magnitude state pushes the sigmoid/tanh gates toward their
    // flat regions, where wrong backward rules hide behind tiny gradients;
    // the relative tolerance inside gradient_check keeps this meaningful
    let mut rng = StdRng::seed_from_u64(14);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "cell", 3, 3, &mut rng);
    let x = Initializer::Uniform(2.5).init(1, 3, &mut rng);

    for target in store.ids().collect::<Vec<_>>() {
        let cell = cell.clone();
        let x = x.clone();
        gradient_check(&mut store, target, EPS, TOL, move |g| {
            let xv = g.constant(x.clone());
            let h0 = g.constant(Tensor::full(1, 3, 0.9));
            let c0 = g.constant(Tensor::full(1, 3, 2.0));
            let (h1, c1) = cell.step(g, xv, h0, c0);
            let (h2, _) = cell.step(g, h1, h1, c1);
            let sq = g.mul(h2, h2);
            g.sum_all(sq)
        })
        .unwrap_or_else(|e| panic!("saturated lstm cell: {e}"));
    }
}

fn supported_backends() -> Vec<&'static str> {
    backend::all()
        .into_iter()
        .filter(|b| b.supported())
        .map(|b| b.name())
        .collect()
}

/// Finite-difference check of the attention block on every registered
/// backend: the SIMD kernels must produce correct *gradients*, not just
/// correct forward values, since the backward rules call the same matmuls.
#[test]
fn attention_gradient_check_on_each_backend() {
    for name in supported_backends() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "attn", 4, 2, &mut rng);
        let x = Initializer::Uniform(0.8).init(3, 4, &mut rng);
        with_backend(name, || {
            for target in store.ids().collect::<Vec<_>>() {
                let attn = attn.clone();
                let x = x.clone();
                gradient_check(&mut store, target, EPS, TOL, move |g| {
                    let xv = g.constant(x.clone());
                    let y = attn.forward(g, xv);
                    let sq = g.mul(y, y);
                    g.sum_all(sq)
                })
                .unwrap_or_else(|e| panic!("attention on backend {name}: {e}"));
            }
        });
    }
}

/// Finite-difference check of the unrolled LSTM on every registered
/// backend.
#[test]
fn lstm_layer_gradient_check_on_each_backend() {
    for name in supported_backends() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut store = ParamStore::new();
        let layer = LstmLayer::new(&mut store, "lstm", 3, 5, &mut rng);
        let xs = Initializer::Uniform(0.8).init(4, 3, &mut rng);
        with_backend(name, || {
            for target in store.ids().collect::<Vec<_>>() {
                let layer = layer.clone();
                let xs = xs.clone();
                gradient_check(&mut store, target, EPS, TOL, move |g| {
                    let xv = g.constant(xs.clone());
                    let hs = layer.forward(g, xv);
                    let sq = g.mul(hs, hs);
                    g.sum_all(sq)
                })
                .unwrap_or_else(|e| panic!("lstm layer on backend {name}: {e}"));
            }
        });
    }
}

/// Runs one attention + LSTM forward/backward pass pinned to a backend and
/// returns every parameter gradient by name.
fn analytic_grads(backend_name: &str) -> Vec<(String, Tensor)> {
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "attn", 4, 2, &mut rng);
    let lstm = LstmLayer::new(&mut store, "lstm", 4, 5, &mut rng);
    let x = Initializer::Uniform(0.8).init(6, 4, &mut rng);
    with_backend(backend_name, || {
        let mut g = Graph::new(&store);
        let xv = g.constant(x.clone());
        let y = attn.forward(&mut g, xv);
        let hs = lstm.forward(&mut g, y);
        let sq = g.mul(hs, hs);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        grads
            .param_grads()
            .map(|(id, t)| (store.name(id).to_string(), t.clone()))
            .collect()
    })
}

/// The analytic gradients themselves — not just their finite-difference
/// agreement — must be bit-identical across backends, so a training run is
/// reproducible regardless of `TENSOR_BACKEND`.
#[test]
fn backward_pass_is_bitwise_backend_invariant() {
    let reference = analytic_grads("scalar");
    assert!(
        !reference.is_empty(),
        "backward produced no parameter gradients"
    );
    for name in supported_backends() {
        let got = analytic_grads(name);
        assert_eq!(reference.len(), got.len(), "backend {name}: gradient count");
        for ((ref_name, ref_grad), (got_name, got_grad)) in reference.iter().zip(&got) {
            assert_eq!(ref_name, got_name, "backend {name}: parameter order");
            assert_eq!(
                ref_grad.shape(),
                got_grad.shape(),
                "backend {name}: {ref_name} shape"
            );
            for (i, (r, g)) in ref_grad
                .as_slice()
                .iter()
                .zip(got_grad.as_slice())
                .enumerate()
            {
                assert_eq!(
                    r.to_bits(),
                    g.to_bits(),
                    "backend {name}: grad {ref_name} element {i} differs: {r} vs {g}"
                );
            }
        }
    }
}
