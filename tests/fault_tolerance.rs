//! Fault-tolerance integration suite: every failure mode the trainer
//! claims to survive is injected here and the recovery is checked — most
//! importantly that recovery is *bit-identical*, not merely "didn't
//! crash".
//!
//! Faults come from `nn::faults` (armed via the `fault-injection` feature
//! in this crate's dev-dependencies): worker panics, NaN losses, and
//! on-disk checkpoint corruption (truncation = crash mid-write, bit flips
//! = silent media rot).
//!
//! Run it at both ends of the threading spectrum — `scripts/check.sh`
//! does `TENSOR_THREADS=1` and multi-threaded passes — since panic
//! containment and shard merging behave differently at each.

use std::path::PathBuf;

use nn::faults::{self, FaultKind};
use nn::{
    load_checkpoint, save_checkpoint, save_checkpoint_v1, AdamW, CheckpointManager, FitOptions,
    LrSchedule, LstmClassifier, LstmConfig, LstmPooling, SequenceModel, TrainError, TrainHistory,
    Trainer, TrainerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(seed: u64) -> LstmClassifier {
    let mut rng = StdRng::seed_from_u64(seed);
    LstmClassifier::new(
        LstmConfig {
            vocab: 16,
            emb_dim: 8,
            hidden: 12,
            layers: 1,
            dropout: 0.0,
            classes: 3,
            pooling: LstmPooling::LastHidden,
        },
        &mut rng,
    )
}

/// A 3-class toy task: the label is the first token mod 3.
fn dataset() -> Vec<(Vec<usize>, usize)> {
    (0..24)
        .map(|i| {
            let first = 1 + (i % 9);
            (vec![first, 1 + (i * 5) % 9, 1 + (i * 7) % 9], first % 3)
        })
        .collect()
}

fn config(epochs: usize) -> TrainerConfig {
    TrainerConfig {
        epochs,
        batch_size: 8,
        schedule: LrSchedule::Constant(0.02),
        grad_clip: 1.0,
        threads: 2,
        seed: 7,
        early_stop_patience: 0,
        divergence_patience: 3,
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cuisine_fault_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_same_weights(a: &LstmClassifier, b: &LstmClassifier) {
    for (id, name, tensor) in a.store().iter() {
        assert_eq!(tensor, b.store().get(id), "weights diverged at {name}");
    }
}

/// Uninterrupted reference run: `epochs` epochs from a fixed init.
fn reference_run(epochs: usize) -> (LstmClassifier, TrainHistory) {
    let mut m = model(42);
    let mut opt = AdamW::default();
    let history = Trainer::new(config(epochs))
        .fit(&mut m, &mut opt, &dataset(), Some(&dataset()))
        .unwrap();
    (m, history)
}

// --- resumable training ------------------------------------------------

#[test]
fn killed_and_resumed_run_is_bit_identical() {
    let dir = scratch_dir("resume");
    let (straight, full_history) = reference_run(5);

    // phase 1: train 3 of 5 epochs with checkpointing, then "die"
    let mut first = model(42);
    let mut opt = AdamW::default();
    Trainer::new(config(3))
        .fit_with(
            &mut first,
            &mut opt,
            &dataset(),
            Some(&dataset()),
            &FitOptions::checkpoint(&dir),
        )
        .unwrap();
    drop((first, opt));

    // phase 2: a fresh process picks up latest.ckpt and finishes
    let mut resumed = model(1234); // wrong init on purpose — must be replaced
    let mut opt = AdamW::default();
    let resumed_history = Trainer::new(config(5))
        .fit_with(
            &mut resumed,
            &mut opt,
            &dataset(),
            Some(&dataset()),
            &FitOptions::resume(&dir),
        )
        .unwrap();

    assert_eq!(full_history, resumed_history, "history must match exactly");
    assert_same_weights(&straight, &resumed);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_on_fresh_directory_is_a_fresh_start() {
    let dir = scratch_dir("resume_fresh");
    let (straight, full_history) = reference_run(2);
    let mut m = model(42);
    let mut opt = AdamW::default();
    let history = Trainer::new(config(2))
        .fit_with(
            &mut m,
            &mut opt,
            &dataset(),
            Some(&dataset()),
            &FitOptions::resume(&dir),
        )
        .unwrap();
    assert_eq!(history, full_history);
    assert_same_weights(&straight, &m);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_of_a_finished_run_trains_zero_epochs() {
    let dir = scratch_dir("resume_done");
    let mut m = model(42);
    let mut opt = AdamW::default();
    let trainer = Trainer::new(config(3));
    let done = trainer
        .fit_with(
            &mut m,
            &mut opt,
            &dataset(),
            None,
            &FitOptions::checkpoint(&dir),
        )
        .unwrap();
    let weights_done = m.store().clone();
    let again = trainer
        .fit_with(
            &mut m,
            &mut opt,
            &dataset(),
            None,
            &FitOptions::resume(&dir),
        )
        .unwrap();
    assert_eq!(done, again, "no extra epochs may run");
    for (id, name, tensor) in m.store().iter() {
        assert_eq!(tensor, weights_done.get(id), "weights moved at {name}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- crash-mid-save and corruption fallback ----------------------------

#[test]
fn corrupted_latest_falls_back_to_previous_checkpoint() {
    let dir = scratch_dir("fallback");
    let mut m = model(42);
    let mut opt = AdamW::default();
    Trainer::new(config(3))
        .fit_with(
            &mut m,
            &mut opt,
            &dataset(),
            None,
            &FitOptions::checkpoint(&dir),
        )
        .unwrap();

    let manager = CheckpointManager::new(&dir).unwrap();
    assert!(manager.latest_path().exists());
    assert!(manager.previous_path().exists());
    // crash mid-write of epoch 3's checkpoint: latest is a torn file
    faults::disk::truncate(&manager.latest_path(), 40).unwrap();

    let mut probe = model(0);
    let state = manager
        .load_latest(probe.store_mut())
        .unwrap()
        .expect("previous.ckpt must be picked up");
    // previous.ckpt holds the epoch-2 state (latest held epoch 3)
    assert_eq!(state.epoch, 2);
    assert_eq!(state.history.epochs.len(), 2);
    assert!(state.optimizer.is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn both_checkpoints_corrupted_is_an_error_not_a_silent_restart() {
    let dir = scratch_dir("all_corrupt");
    let mut m = model(42);
    let mut opt = AdamW::default();
    Trainer::new(config(3))
        .fit_with(
            &mut m,
            &mut opt,
            &dataset(),
            None,
            &FitOptions::checkpoint(&dir),
        )
        .unwrap();
    let manager = CheckpointManager::new(&dir).unwrap();
    faults::disk::truncate(&manager.latest_path(), 10).unwrap();
    faults::disk::truncate(&manager.previous_path(), 10).unwrap();
    let mut probe = model(0);
    let err = manager.load_latest(probe.store_mut()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- checkpoint corruption matrix --------------------------------------

#[test]
fn truncated_checkpoint_is_invalid_data_without_mutation() {
    let dir = scratch_dir("trunc");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.bin");
    save_checkpoint(model(1).store(), &path).unwrap();
    let full = std::fs::metadata(&path).unwrap().len();
    for keep in [0, 4, 21, 34, full / 2] {
        faults::disk::truncate(&path, keep).unwrap();
        let mut victim = model(2);
        let pristine = victim.store().clone();
        let err = load_checkpoint(victim.store_mut(), &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "keep={keep}");
        for (id, name, tensor) in victim.store().iter() {
            assert_eq!(tensor, pristine.get(id), "mutated {name} at keep={keep}");
        }
        save_checkpoint(model(1).store(), &path).unwrap(); // rewrite for next round
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_checkpoint_fails_the_crc_without_mutation() {
    let dir = scratch_dir("bitflip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.bin");
    save_checkpoint(model(1).store(), &path).unwrap();
    let len = std::fs::metadata(&path).unwrap().len() as usize;
    // flip one bit deep inside the payload
    faults::disk::flip_bit(&path, len / 2, 3).unwrap();
    let mut victim = model(2);
    let pristine = victim.store().clone();
    let err = load_checkpoint(victim.store_mut(), &path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "got: {err}");
    for (id, name, tensor) in victim.store().iter() {
        assert_eq!(tensor, pristine.get(id), "mutated {name}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v1_checkpoints_remain_readable() {
    let dir = scratch_dir("v1");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("legacy.json");
    let old = model(1);
    save_checkpoint_v1(old.store(), &path).unwrap();
    let mut new = model(2);
    load_checkpoint(new.store_mut(), &path).unwrap();
    assert_same_weights(&old, &new);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn architecture_mismatch_is_rejected_without_mutation() {
    let dir = scratch_dir("arch");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.bin");
    save_checkpoint(model(1).store(), &path).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut wider = LstmClassifier::new(
        LstmConfig {
            vocab: 16,
            emb_dim: 8,
            hidden: 20, // different width than the saved model
            layers: 1,
            dropout: 0.0,
            classes: 3,
            pooling: LstmPooling::LastHidden,
        },
        &mut rng,
    );
    let pristine = wider.store().clone();
    let err = load_checkpoint(wider.store_mut(), &path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    for (id, name, tensor) in wider.store().iter() {
        assert_eq!(tensor, pristine.get(id), "mutated {name}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_file_is_neither_v1_nor_v2() {
    let dir = scratch_dir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.bin");
    std::fs::write(&path, b"these are not the checkpoints you are looking for").unwrap();
    let mut victim = model(1);
    let err = load_checkpoint(victim.store_mut(), &path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- injected runtime faults -------------------------------------------

#[test]
fn worker_panic_is_survived_bit_identically() {
    let _guard = faults::test_guard();
    faults::reset();
    let (straight, clean_history) = reference_run(3);

    let mut faulted = model(42);
    let mut opt = AdamW::default();
    faults::inject(FaultKind::WorkerPanic, 1);
    let history = Trainer::new(config(3))
        .fit(&mut faulted, &mut opt, &dataset(), Some(&dataset()))
        .unwrap();
    faults::reset();

    assert_eq!(clean_history, history, "retry must not change the run");
    assert_same_weights(&straight, &faulted);
}

#[test]
fn nan_loss_is_skipped_and_surfaced_in_stats() {
    let _guard = faults::test_guard();
    faults::reset();
    let mut m = model(42);
    let mut opt = AdamW::default();
    faults::inject(FaultKind::NanLoss, 1);
    let history = Trainer::new(config(3))
        .fit(&mut m, &mut opt, &dataset(), None)
        .unwrap();
    faults::reset();
    assert_eq!(history.total_skipped_steps(), 1);
    assert_eq!(history.total_rollbacks(), 0);
    assert!(history.epochs.iter().all(|e| e.train_loss.is_finite()));
}

#[test]
fn sustained_nan_loss_rolls_back_and_recovers() {
    let _guard = faults::test_guard();
    faults::reset();
    let mut m = model(42);
    let mut opt = AdamW::default();
    faults::inject(FaultKind::NanLoss, 3); // exactly divergence_patience
    let history = Trainer::new(config(3))
        .fit(&mut m, &mut opt, &dataset(), None)
        .unwrap();
    faults::reset();
    assert_eq!(history.total_rollbacks(), 1);
    assert_eq!(history.epochs.len(), 3, "rollback must not shorten the run");
    assert!(history.epochs.iter().all(|e| e.train_loss.is_finite()));
    for (_, name, tensor) in m.store().iter() {
        assert!(!tensor.has_non_finite(), "NaN leaked into {name}");
    }
}

// --- input validation --------------------------------------------------

#[test]
fn out_of_range_label_is_an_error_not_a_panic() {
    let mut data = dataset();
    data[5].1 = 17; // model has 3 classes
    let mut m = model(42);
    let mut opt = AdamW::default();
    let err = Trainer::new(config(1))
        .fit(&mut m, &mut opt, &data, None)
        .unwrap_err();
    assert!(
        matches!(
            err,
            TrainError::BadExample {
                index: 5,
                label: 17,
                classes: 3
            }
        ),
        "got {err:?}"
    );
    let err = Trainer::new(config(1)).evaluate(&m, &data).unwrap_err();
    assert!(matches!(err, TrainError::BadExample { .. }));
}
