//! Property/differential tests for the int8 quantization path.
//!
//! Three contracts, swept over ragged shapes and random seeds:
//!
//! * **round-trip accuracy** — per-row quantize/dequantize error is at
//!   most `scale/2` per element (up to one f32 rounding of the result);
//! * **thread determinism** — `quant_matmul` / `quant_matmul_at_b` are
//!   bit-identical for every thread count (integer accumulation is exact,
//!   so this is a stronger guarantee than the f32 kernels', which only
//!   promise identical *tile-sum* ordering);
//! * **batch invariance** — the fused int8 LSTM engine answers each
//!   sequence identically whether it is evaluated alone or inside any
//!   batch.
//!
//! Run under `TENSOR_THREADS ∈ {1, 4}` in CI; the explicit
//! `_with_threads` sweeps below make the determinism check independent of
//! the ambient pool size.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{
    quant_matmul, quant_matmul_at_b, quant_matmul_at_b_with_threads, quant_matmul_into,
    quant_matmul_with_threads, Initializer, QuantMatrix, Tensor,
};

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Shapes that stress tile and SIMD-block boundaries: 1, primes around
/// the 16-channel × 4-deep packed layout, and a size past the remainder
/// handling.
fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(3),
        Just(5),
        Just(13),
        Just(15),
        Just(16),
        Just(17),
        Just(31),
        Just(33)
    ]
}

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Initializer::Uniform(2.0).init(rows, cols, &mut rng)
}

fn assert_bits_equal(label: &str, reference: &Tensor, got: &Tensor) {
    assert_eq!(reference.shape(), got.shape(), "{label}: shape mismatch");
    for (i, (a, b)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}: element {i} differs: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_error_is_at_most_half_scale_per_row(
        rows in ragged_dim(), cols in ragged_dim(), seed in 0u64..1000,
    ) {
        let m = random_tensor(rows, cols, seed);
        let q = QuantMatrix::quantize_rows(&m);
        let back = q.dequantize();
        for r in 0..rows {
            let half_scale = 0.5 * f64::from(q.row_scale(r));
            for (x, y) in m.row(r).iter().zip(back.row(r)) {
                let err = (f64::from(*x) - f64::from(*y)).abs();
                let bound = half_scale + f64::from(x.abs()) * f64::from(f32::EPSILON);
                prop_assert!(
                    err <= bound,
                    "row {r}: |{x} - {y}| = {err} > {bound}"
                );
            }
        }
    }

    #[test]
    fn quant_matmul_is_bit_identical_across_thread_counts(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        let a = random_tensor(m, k, seed);
        let w = QuantMatrix::quantize(&random_tensor(k, n, seed ^ 0xabc));
        let serial = quant_matmul_with_threads(&a, &w, 1);
        for threads in THREAD_SWEEP {
            let par = quant_matmul_with_threads(&a, &w, threads);
            assert_bits_equal(&format!("quant {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
        // the auto path (ambient pool) and the `_into` variant must agree too
        assert_bits_equal(&format!("quant {m}x{k}x{n} auto"), &serial, &quant_matmul(&a, &w));
        let mut out = Tensor::zeros(m, n);
        quant_matmul_into(&a, &w, &mut out);
        assert_bits_equal(&format!("quant {m}x{k}x{n} into"), &serial, &out);
    }

    #[test]
    fn quant_at_b_is_bit_identical_across_thread_counts(
        m in ragged_dim(), k in ragged_dim(), n in ragged_dim(), seed in 0u64..1000,
    ) {
        let a = random_tensor(k, m, seed);
        let w = QuantMatrix::quantize(&random_tensor(k, n, seed ^ 0xdef));
        let serial = quant_matmul_at_b_with_threads(&a, &w, 1);
        for threads in THREAD_SWEEP {
            let par = quant_matmul_at_b_with_threads(&a, &w, threads);
            assert_bits_equal(&format!("at_b {m}x{k}x{n} threads={threads}"), &serial, &par);
        }
        assert_bits_equal(&format!("at_b {m}x{k}x{n} auto"), &serial, &quant_matmul_at_b(&a, &w));
    }
}

mod engine {
    use nn::{LstmClassifier, LstmConfig, LstmPooling, QuantLstmClassifier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(pooling: LstmPooling, seed: u64) -> QuantLstmClassifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = LstmClassifier::new(
            LstmConfig {
                vocab: 37,
                emb_dim: 12,
                hidden: 10,
                layers: 2,
                dropout: 0.0,
                classes: 7,
                pooling,
            },
            &mut rng,
        );
        QuantLstmClassifier::from_f32(&model)
    }

    /// Ragged sequence set covering ties in length, singleton tokens and
    /// repeats.
    fn seqs() -> Vec<Vec<usize>> {
        (0..17)
            .map(|i| (0..(i % 11 + 1)).map(|t| (i * 5 + t * 3) % 37).collect())
            .collect()
    }

    #[test]
    fn int8_answers_do_not_depend_on_batch_composition() {
        for pooling in [LstmPooling::LastHidden, LstmPooling::MeanPool] {
            let q = engine(pooling, 21);
            let seqs = seqs();
            let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
            let full = q.predict_proba_batch(&refs);
            // singleton vs full batch
            for (i, seq) in seqs.iter().enumerate() {
                let alone = q.predict_proba_batch(&[seq.as_slice()]);
                assert_eq!(alone[0], full[i], "row {i} changed inside the batch");
            }
            // arbitrary sub-batch, shuffled order
            let pick = [4usize, 16, 2, 9];
            let sub: Vec<&[usize]> = pick.iter().map(|&i| refs[i]).collect();
            let sub_rows = q.predict_proba_batch(&sub);
            for (r, &i) in pick.iter().enumerate() {
                assert_eq!(sub_rows[r], full[i], "sub-batch row {r} drifted");
            }
        }
    }

    #[test]
    fn int8_probabilities_are_normalized_rows() {
        let q = engine(LstmPooling::LastHidden, 5);
        let seqs = seqs();
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
        for row in q.predict_proba_batch(&refs) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|p| p.is_finite() && *p >= 0.0));
        }
    }
}
