//! End-to-end observability check: one traced pipeline run must produce a
//! span tree covering featurize → train → eval with per-epoch timings,
//! plus live pool and arena counters — the same artifact `table4 --trace`
//! writes to `RUN_trace.json`.
//!
//! Trace state is process-global, so this file keeps everything in a
//! single test function.

use cuisine::{ModelKind, Pipeline, PipelineConfig, Scale};

#[test]
fn traced_lstm_run_covers_featurize_train_eval() {
    trace::reset();
    trace::enable();

    let mut config = PipelineConfig::new(Scale::Custom(0.004), 7);
    config.models.vocab_max_size = 600;
    // shrink the LSTM so the traced run stays test-sized
    config.models.lstm.emb_dim = 8;
    config.models.lstm.hidden = 8;
    config.models.lstm.layers = 1;
    config.models.lstm_trainer.epochs = 2;

    let pipeline = Pipeline::prepare(&config);
    let result = pipeline.run(ModelKind::Lstm, &config);
    assert!(result.report.accuracy.is_finite());

    // tiny matmuls stay on the calling thread (and Auto mode collapses to
    // one thread on single-core machines), so drive the parallel path once
    // explicitly to exercise the pool counters in the same trace
    let a = tensor::Tensor::full(64, 64, 1.0);
    let _ = tensor::matmul_with_threads(&a, &a, 2);

    trace::disable();
    let snap = trace::snapshot();

    // --- span tree -------------------------------------------------------
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_ref()).collect();
    for expected in [
        "featurize",
        "featurize.generate",
        "featurize.preprocess",
        "featurize.encode",
        "model[LSTM]",
        "train",
        "nn.trainer.fit",
        "epoch[0]",
        "epoch[1]",
        "eval",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected:?} missing from {names:?}"
        );
    }

    let by_name = |n: &str| snap.spans.iter().find(|s| s.name == n).unwrap();
    // per-epoch timings are real measurements, nested under the fit span
    let fit = by_name("nn.trainer.fit");
    for epoch in ["epoch[0]", "epoch[1]"] {
        let s = by_name(epoch);
        assert!(s.dur_ns > 0, "{epoch} must carry a wall-clock duration");
        assert_eq!(s.parent, Some(fit.id), "{epoch} must nest under the fit");
    }
    // the pipeline phases nest under the model span
    let model = by_name("model[LSTM]");
    assert_eq!(by_name("train").parent, Some(model.id));
    assert_eq!(by_name("eval").parent, Some(model.id));
    assert!(
        by_name("train").dur_ns >= fit.dur_ns,
        "train span encloses the fit"
    );

    // --- counters and gauges ---------------------------------------------
    let arena_activity = snap.counter("autograd.arena.recycled").unwrap_or(0)
        + snap.counter("autograd.arena.allocated").unwrap_or(0);
    assert!(arena_activity > 0, "LSTM backward must touch the arena");
    assert!(
        snap.counter("nn.train.tokens").unwrap_or(0) > 0,
        "token throughput counter must accumulate"
    );
    let pool_activity = snap.counter("tensor.pool.jobs").unwrap_or(0)
        + snap.counter("tensor.pool.scoped_jobs").unwrap_or(0)
        + snap.counter("tensor.pool.inline_fallbacks").unwrap_or(0);
    assert!(pool_activity > 0, "the 64×64 matmul must consult the pool");
    assert!(
        snap.counter("tensor.pool.tiles").unwrap_or(0) > 0,
        "tile counter must accumulate"
    );

    // --- JSON artifact ----------------------------------------------------
    let json = snap.to_json();
    for needle in [
        "\"spans\"",
        "\"counters\"",
        "\"gauges\"",
        "featurize",
        "epoch[0]",
    ] {
        assert!(json.contains(needle), "{needle} missing from JSON:\n{json}");
    }
    let path = std::env::temp_dir().join(format!("RUN_trace_test_{}.json", std::process::id()));
    trace::write_json(&path).unwrap();
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.contains("\"spans\""));
    let _ = std::fs::remove_file(&path);

    // disabled again: new spans and counter bumps must be dropped
    let before = snap.spans.len();
    {
        let _s = trace::span("after-disable");
    }
    assert_eq!(trace::snapshot().spans.len(), before);
}
