//! End-to-end observability check: one traced pipeline run must produce a
//! span tree covering featurize → train → eval with per-epoch timings,
//! plus live pool and arena counters — the same artifact `table4 --trace`
//! writes to `RUN_trace.json`.
//!
//! Trace state is process-global, so this file keeps everything in a
//! single test function.

use std::sync::Arc;
use std::time::Duration;

use cuisine::{ModelKind, Pipeline, PipelineConfig, Scale};
use serve::{BatchServer, Features, ModelRegistry, ServeConfig, ServingModel};

/// Minimal in-process model: enough for the batch server to queue, batch,
/// and answer, so the serve.* metrics accumulate in the same trace.
struct EchoModel;

impl ServingModel for EchoModel {
    fn kind(&self) -> &'static str {
        "echo"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn featurize(&self, tokens: &[String]) -> Features {
        Features::Ids(vec![tokens.len()])
    }

    fn predict(&self, batch: &[&Features]) -> Vec<Vec<f64>> {
        batch.iter().map(|_| vec![0.75, 0.25]).collect()
    }
}

#[test]
fn traced_lstm_run_covers_featurize_train_eval() {
    trace::reset();
    trace::enable();

    let mut config = PipelineConfig::new(Scale::Custom(0.004), 7);
    config.models.vocab_max_size = 600;
    // shrink the LSTM so the traced run stays test-sized
    config.models.lstm.emb_dim = 8;
    config.models.lstm.hidden = 8;
    config.models.lstm.layers = 1;
    config.models.lstm_trainer.epochs = 2;

    let pipeline = Pipeline::prepare(&config);
    let result = pipeline.run(ModelKind::Lstm, &config);
    assert!(result.report.accuracy.is_finite());

    // tiny matmuls stay on the calling thread (and Auto mode collapses to
    // one thread on single-core machines), so drive the parallel path once
    // explicitly to exercise the pool counters in the same trace
    let a = tensor::Tensor::full(64, 64, 1.0);
    let _ = tensor::matmul_with_threads(&a, &a, 2);

    trace::disable();
    let snap = trace::snapshot();

    // --- span tree -------------------------------------------------------
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_ref()).collect();
    for expected in [
        "featurize",
        "featurize.generate",
        "featurize.preprocess",
        "featurize.encode",
        "model[LSTM]",
        "train",
        "nn.trainer.fit",
        "epoch[0]",
        "epoch[1]",
        "eval",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected:?} missing from {names:?}"
        );
    }

    let by_name = |n: &str| snap.spans.iter().find(|s| s.name == n).unwrap();
    // per-epoch timings are real measurements, nested under the fit span
    let fit = by_name("nn.trainer.fit");
    for epoch in ["epoch[0]", "epoch[1]"] {
        let s = by_name(epoch);
        assert!(s.dur_ns > 0, "{epoch} must carry a wall-clock duration");
        assert_eq!(s.parent, Some(fit.id), "{epoch} must nest under the fit");
    }
    // the pipeline phases nest under the model span
    let model = by_name("model[LSTM]");
    assert_eq!(by_name("train").parent, Some(model.id));
    assert_eq!(by_name("eval").parent, Some(model.id));
    assert!(
        by_name("train").dur_ns >= fit.dur_ns,
        "train span encloses the fit"
    );

    // --- counters and gauges ---------------------------------------------
    let arena_activity = snap.counter("autograd.arena.recycled").unwrap_or(0)
        + snap.counter("autograd.arena.allocated").unwrap_or(0);
    assert!(arena_activity > 0, "LSTM backward must touch the arena");
    assert!(
        snap.counter("nn.train.tokens").unwrap_or(0) > 0,
        "token throughput counter must accumulate"
    );
    let pool_activity = snap.counter("tensor.pool.jobs").unwrap_or(0)
        + snap.counter("tensor.pool.scoped_jobs").unwrap_or(0)
        + snap.counter("tensor.pool.inline_fallbacks").unwrap_or(0);
    assert!(pool_activity > 0, "the 64×64 matmul must consult the pool");
    assert!(
        snap.counter("tensor.pool.tiles").unwrap_or(0) > 0,
        "tile counter must accumulate"
    );

    // --- JSON artifact ----------------------------------------------------
    let json = snap.to_json();
    for needle in [
        "\"spans\"",
        "\"counters\"",
        "\"gauges\"",
        "featurize",
        "epoch[0]",
    ] {
        assert!(json.contains(needle), "{needle} missing from JSON:\n{json}");
    }
    let path = std::env::temp_dir().join(format!("RUN_trace_test_{}.json", std::process::id()));
    trace::write_json(&path).unwrap();
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.contains("\"spans\""));
    let _ = std::fs::remove_file(&path);

    // disabled again: new spans and counter bumps must be dropped
    let before = snap.spans.len();
    {
        let _s = trace::span("after-disable");
    }
    assert_eq!(trace::snapshot().spans.len(), before);

    // --- serve queue gauge drains to zero ---------------------------------
    // run a batch server inside a fresh trace window and check the depth
    // gauge lands back at 0 in the snapshot: every enqueue must be
    // matched by a drain, including the final batch and worker exit
    trace::reset();
    trace::enable();
    let registry = Arc::new(ModelRegistry::new());
    registry.set_warmup(false); // EchoModel needs no gating here
    registry.publish("echo", Box::new(EchoModel)).unwrap();
    let server = BatchServer::start(
        Arc::clone(&registry),
        "echo",
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = Arc::new(server);
    let drivers: Vec<_> = (0..3)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for i in 0..40 {
                    server
                        .classify(&format!("salt, pepper, spice-{t}-{i}"), None)
                        .unwrap();
                }
            })
        })
        .collect();
    for d in drivers {
        d.join().unwrap();
    }
    server.shutdown();
    trace::disable();
    let serve_snap = trace::snapshot();
    assert!(
        serve_snap.counter("serve.requests").unwrap_or(0) >= 120,
        "all driven requests must be counted"
    );
    assert_eq!(
        serve_snap.gauge("serve.queue.depth"),
        Some(0),
        "queue depth gauge must return to 0 after drain + shutdown"
    );
}
