//! Integration tests for the non-blocking completion-queue front-end
//! (`BatchServer::submit` + `CompletionQueue`) and the replica event
//! loop that multiplexes client sockets over it.
//!
//! The load-bearing contract: every admitted ticket terminates exactly
//! once — through a model answer, a cancellation, a deadline, or a
//! drain — no double-delivery, no leaked ticket, regardless of how
//! shutdown races submission. check.sh runs this suite at several
//! `TENSOR_THREADS` settings.

use std::collections::HashMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serve::eventloop::{self, EventLoopConfig, LoopExit};
use serve::transport::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use serve::{
    BatchServer, CompletionQueue, Features, ModelRegistry, ServeConfig, ServeError, ServingModel,
    Ticket,
};

/// Deterministic toy model: probabilities depend only on the token
/// count, so any two paths through the server are trivially comparable.
struct CountModel {
    /// Per-batch predict stall, to keep tickets in flight long enough
    /// for shutdown/cancel races to actually race.
    stall: Duration,
    calls: AtomicUsize,
}

impl CountModel {
    fn new(stall: Duration) -> Self {
        Self {
            stall,
            calls: AtomicUsize::new(0),
        }
    }
}

impl ServingModel for CountModel {
    fn kind(&self) -> &'static str {
        "count"
    }
    fn num_classes(&self) -> usize {
        3
    }
    fn featurize(&self, tokens: &[String]) -> Features {
        Features::Ids(vec![tokens.len()])
    }
    fn predict(&self, batch: &[&Features]) -> Vec<Vec<f64>> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        batch
            .iter()
            .map(|f| {
                let n = match f {
                    Features::Ids(ids) => ids[0] as f64,
                    _ => 0.0,
                };
                let total = n + 2.0;
                vec![n / total, 1.0 / total, 1.0 / total]
            })
            .collect()
    }
}

fn start_server(stall: Duration, config: ServeConfig) -> (Arc<BatchServer>, Arc<ModelRegistry>) {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .publish("count", Box::new(CountModel::new(stall)))
        .unwrap();
    let server = BatchServer::start(Arc::clone(&registry), "count", config).unwrap();
    (Arc::new(server), registry)
}

fn tokens_for(i: usize) -> (Vec<String>, String) {
    let tokens: Vec<String> = (0..(i % 5) + 1).map(|t| format!("tok{t}")).collect();
    let key = format!("req-{i}:{}", tokens.join("\x1f"));
    (tokens, key)
}

fn scratch_socket(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir();
    dir.join(format!("cq-{tag}-{}.sock", std::process::id()))
}

#[test]
fn shutdown_with_outstanding_tickets_terminates_each_exactly_once() {
    let (server, _registry) = start_server(
        Duration::from_millis(2),
        ServeConfig {
            max_batch: 4,
            queue_capacity: 512,
            ..ServeConfig::default()
        },
    );
    let cq = CompletionQueue::new();
    let mut expected: Vec<Ticket> = Vec::new();
    for i in 0..128 {
        let (tokens, key) = tokens_for(i);
        expected.push(server.submit(tokens, key, None, &cq).unwrap());
    }

    // shutdown while most tickets are still queued: drain semantics say
    // every one of them still answers through the model
    server.shutdown();

    let mut seen: HashMap<Ticket, usize> = HashMap::new();
    while let Some(done) = cq.wait_with_timeout(Duration::from_secs(10)) {
        *seen.entry(done.ticket).or_default() += 1;
        let prediction = done
            .result
            .expect("drained tickets answer through the model");
        assert_eq!(prediction.probs.len(), 3);
    }
    assert_eq!(seen.len(), expected.len(), "every ticket terminates");
    for ticket in &expected {
        assert_eq!(seen.get(ticket), Some(&1), "{ticket:?} delivered once");
    }
    assert_eq!(cq.outstanding(), 0, "no leaked tickets");
    assert_eq!(cq.ready(), 0, "no stray completions");

    // intake is closed: a late submit fails synchronously and leaves
    // nothing outstanding
    let (tokens, key) = tokens_for(999);
    match server.submit(tokens, key, None, &cq) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    assert_eq!(cq.outstanding(), 0);
}

#[test]
fn canceled_tickets_terminate_once_and_skip_compute() {
    let (server, _registry) = start_server(
        Duration::from_millis(5),
        ServeConfig {
            max_batch: 2,
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    );
    let cq = CompletionQueue::new();
    let mut tickets = Vec::new();
    for i in 0..64 {
        let (tokens, key) = tokens_for(i);
        tickets.push(server.submit(tokens, key, None, &cq).unwrap());
    }
    // cancel every other ticket while the worker is still chewing
    let mut canceled = Vec::new();
    for (i, ticket) in tickets.iter().enumerate() {
        if i % 2 == 1 && cq.cancel(*ticket) {
            canceled.push(*ticket);
        }
    }
    assert!(!canceled.is_empty(), "some cancellations must land");

    let mut seen: HashMap<Ticket, usize> = HashMap::new();
    let mut canceled_seen = 0;
    while let Some(done) = cq.wait_with_timeout(Duration::from_secs(10)) {
        *seen.entry(done.ticket).or_default() += 1;
        match done.result {
            Ok(prediction) => assert_eq!(prediction.probs.len(), 3),
            Err(ServeError::Canceled) => {
                assert!(canceled.contains(&done.ticket));
                canceled_seen += 1;
            }
            Err(other) => panic!("unexpected terminal error {other:?}"),
        }
    }
    assert_eq!(seen.len(), tickets.len(), "every ticket terminates");
    assert!(seen.values().all(|&n| n == 1), "no double delivery");
    assert_eq!(canceled_seen, canceled.len());
    assert_eq!(cq.outstanding(), 0);
    server.shutdown();
}

#[test]
fn submitted_answers_match_the_blocking_path_bitwise() {
    let (server, _registry) = start_server(Duration::ZERO, ServeConfig::default());
    let cq = CompletionQueue::new();
    let mut by_ticket = HashMap::new();
    for i in 0..32 {
        let (tokens, key) = tokens_for(i);
        let ticket = server
            .submit(tokens.clone(), key.clone(), None, &cq)
            .unwrap();
        by_ticket.insert(ticket, (tokens, key));
    }
    let mut done = 0;
    while let Some(completion) = cq.wait_with_timeout(Duration::from_secs(10)) {
        let (tokens, key) = by_ticket.remove(&completion.ticket).unwrap();
        let via_queue = completion.result.unwrap();
        let blocking = server.classify_prepared(tokens, key, None).unwrap();
        assert_eq!(via_queue.probs, blocking.probs, "bit-identical answers");
        assert_eq!(via_queue.top_class, blocking.top_class);
        done += 1;
    }
    assert_eq!(done, 32);
    server.shutdown();
}

#[test]
fn event_loop_pipelines_many_requests_on_one_connection() {
    let (server, registry) = start_server(Duration::ZERO, ServeConfig::default());
    let socket = scratch_socket("pipeline");
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket).unwrap();
    let loop_thread = {
        let server = Arc::clone(&server);
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            eventloop::run(
                listener,
                &server,
                &registry,
                "count",
                &EventLoopConfig::default(),
                None,
            )
        })
    };

    let mut conn = UnixStream::connect(&socket).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // pipeline every request up front without reading a single response:
    // the old thread-per-connection worker would answer these strictly
    // in lockstep; the event loop keeps them all in flight at once
    let total: u64 = 200;
    let mut expected = HashMap::new();
    for id in 0..total {
        let (tokens, _) = tokens_for(id as usize);
        let key = tokens.join("\x1f");
        let request = Request::Classify {
            id,
            deadline_us: 0,
            key: key.clone(),
        };
        write_frame(&mut conn, &encode_request(&request)).unwrap();
        let truth = server.classify_prepared(tokens, key, None).unwrap();
        expected.insert(id, truth);
    }
    // a Ping rides the same multiplexed connection
    write_frame(&mut conn, &encode_request(&Request::Ping { id: 9_999 })).unwrap();

    let mut answered = HashMap::new();
    let mut pong_seen = false;
    for _ in 0..=total {
        let payload = read_frame(&mut conn).unwrap();
        match decode_response(&payload).unwrap() {
            Response::Prediction { id, prediction } => {
                assert!(
                    answered.insert(id, prediction).is_none(),
                    "duplicate id {id}"
                );
            }
            Response::Pong { id, .. } => {
                assert_eq!(id, 9_999);
                pong_seen = true;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(pong_seen);
    assert_eq!(answered.len() as u64, total);
    for (id, truth) in &expected {
        let got = &answered[id];
        assert_eq!(got.probs, truth.probs, "id {id}: bit-identical answers");
        assert_eq!(got.top_class, truth.top_class);
    }

    // a clean shutdown drains and stops the loop with exit code 0
    write_frame(&mut conn, &encode_request(&Request::Shutdown { id: 0 })).unwrap();
    let exit = loop_thread.join().unwrap().unwrap();
    assert_eq!(exit, LoopExit::ShutdownRequested);
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn event_loop_survives_client_disconnect_with_requests_in_flight() {
    let (server, registry) = start_server(
        Duration::from_millis(5),
        ServeConfig {
            max_batch: 2,
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    );
    let socket = scratch_socket("disconnect");
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket).unwrap();
    let loop_thread = {
        let server = Arc::clone(&server);
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            eventloop::run(
                listener,
                &server,
                &registry,
                "count",
                &EventLoopConfig::default(),
                None,
            )
        })
    };

    // flood and vanish: the loop must cancel the orphaned tickets and
    // keep serving other clients
    {
        let mut doomed = UnixStream::connect(&socket).unwrap();
        for id in 0..50u64 {
            let request = Request::Classify {
                id,
                deadline_us: 0,
                key: "soy\x1fginger".into(),
            };
            write_frame(&mut doomed, &encode_request(&request)).unwrap();
        }
    } // dropped with answers still in flight

    let mut conn = UnixStream::connect(&socket).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = Request::Classify {
        id: 7,
        deadline_us: 0,
        key: "soy\x1fginger\x1frice".into(),
    };
    write_frame(&mut conn, &encode_request(&request)).unwrap();
    match decode_response(&read_frame(&mut conn).unwrap()).unwrap() {
        Response::Prediction { id, prediction } => {
            assert_eq!(id, 7);
            assert_eq!(prediction.probs.len(), 3);
        }
        other => panic!("expected Prediction, got {other:?}"),
    }

    write_frame(&mut conn, &encode_request(&Request::Shutdown { id: 8 })).unwrap();
    let exit = loop_thread.join().unwrap().unwrap();
    assert_eq!(exit, LoopExit::ShutdownRequested);
    let _ = std::fs::remove_file(&socket);
}
