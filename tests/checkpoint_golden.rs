//! Golden-file tests for the checkpoint formats.
//!
//! The v2 binary format round-trips the full `TrainState` (history,
//! optimizer moments, divergence-guard state) bit-exactly; the committed
//! `tests/fixtures/checkpoint_v1.json` fixture proves the legacy v1 JSON
//! format stays loadable forever. The fixture is written by
//! `save_checkpoint_v1` itself — regenerate it (after deliberate format
//! work only) with:
//!
//! ```text
//! CUISINE_REGEN_FIXTURES=1 cargo test -p cuisine --test checkpoint_golden -- --ignored
//! ```

use std::path::PathBuf;

use autograd::ParamStore;
use nn::{
    load_checkpoint, load_checkpoint_with_state, save_checkpoint_v1, save_checkpoint_with_state,
    CheckpointManager, EpochStats, OptimizerSlot, OptimizerState, TrainHistory, TrainState,
};
use tensor::Tensor;

/// All values exactly representable in f32 *and* in decimal JSON, so the
/// v1 text round trip is bit-exact too.
fn golden_values() -> Vec<(&'static str, usize, usize, Vec<f32>)> {
    vec![
        ("emb.weight", 2, 3, vec![0.5, -1.25, 2.0, 0.0, 3.5, -0.75]),
        ("out.weight", 3, 2, vec![1.0, -2.0, 0.25, 4.0, -0.125, 8.0]),
        ("out.bias", 1, 2, vec![1.5, -2.5]),
    ]
}

fn golden_store() -> ParamStore {
    let mut store = ParamStore::new();
    for (name, rows, cols, data) in golden_values() {
        store.add(name, Tensor::from_vec(rows, cols, data));
    }
    store
}

/// Same names/shapes as the golden store, all-zero values — the receiving
/// side of every load below.
fn blank_store() -> ParamStore {
    let mut store = ParamStore::new();
    for (name, rows, cols, _) in golden_values() {
        store.add(name, Tensor::zeros(rows, cols));
    }
    store
}

fn assert_stores_bit_identical(a: &ParamStore, b: &ParamStore) {
    let (ids_a, ids_b): (Vec<_>, Vec<_>) = (a.ids().collect(), b.ids().collect());
    assert_eq!(ids_a.len(), ids_b.len());
    for (&ia, &ib) in ids_a.iter().zip(&ids_b) {
        assert_eq!(a.name(ia), b.name(ib));
        let (ta, tb) = (a.get(ia), b.get(ib));
        assert_eq!(ta.shape(), tb.shape(), "shape of {}", a.name(ia));
        for (x, y) in ta.as_slice().iter().zip(tb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "weights of {}", a.name(ia));
        }
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/checkpoint_v1.json"
    ))
}

fn golden_state() -> TrainState {
    TrainState {
        epoch: 3,
        step: 42,
        seed: 2020,
        lr_scale: 0.25,
        best_val: 1.5,
        stale: 1,
        history: TrainHistory {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 2.5,
                    val_loss: Some(2.25),
                    val_accuracy: Some(0.5),
                    skipped_steps: 0,
                    rollbacks: 0,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 1.75,
                    val_loss: None,
                    val_accuracy: None,
                    skipped_steps: 2,
                    rollbacks: 1,
                },
            ],
        },
        optimizer: Some(OptimizerState {
            kind: "adamw".to_string(),
            step_count: 42,
            slots: vec![OptimizerSlot {
                param: 0,
                tensors: vec![Tensor::full(2, 3, 0.5), Tensor::full(2, 3, 0.0625)],
            }],
        }),
    }
}

#[test]
fn v2_round_trip_restores_weights_and_state_exactly() {
    let dir = tempdir("v2_roundtrip");
    let path = dir.join("golden.ckpt");
    let source = golden_store();
    let state = golden_state();
    save_checkpoint_with_state(&source, &state, &path).unwrap();

    let mut restored = blank_store();
    let loaded = load_checkpoint_with_state(&mut restored, &path)
        .unwrap()
        .expect("v2 checkpoint must carry its TrainState");
    assert_stores_bit_identical(&source, &restored);
    assert_eq!(loaded, state, "TrainState must round-trip exactly");
}

#[test]
fn v2_manager_rotation_round_trips() {
    let dir = tempdir("v2_rotation");
    let manager = CheckpointManager::new(&dir).unwrap();
    let source = golden_store();
    let state = golden_state();
    manager.save(&source, Some(&state)).unwrap();
    manager.save(&source, Some(&state)).unwrap(); // rotates latest → previous
    assert!(manager.previous_path().exists());

    let mut restored = blank_store();
    let loaded = manager.load_latest(&mut restored).unwrap().unwrap();
    assert_stores_bit_identical(&source, &restored);
    assert_eq!(loaded, state);
}

#[test]
fn committed_v1_fixture_still_loads() {
    let path = fixture_path();
    assert!(
        path.exists(),
        "missing fixture {} — regenerate with CUISINE_REGEN_FIXTURES=1",
        path.display()
    );
    let mut restored = blank_store();
    let state = load_checkpoint_with_state(&mut restored, &path).unwrap();
    assert!(state.is_none(), "v1 files never carry a TrainState");
    assert_stores_bit_identical(&golden_store(), &restored);
}

#[test]
fn fresh_v1_file_matches_committed_fixture_byte_for_byte() {
    // catches accidental drift in the v1 *writer*: if this fails, either
    // revert the writer change or deliberately regenerate the fixture
    let dir = tempdir("v1_drift");
    let path = dir.join("fresh_v1.json");
    save_checkpoint_v1(&golden_store(), &path).unwrap();
    let fresh = std::fs::read(&path).unwrap();
    let committed = std::fs::read(fixture_path()).unwrap();
    assert_eq!(
        fresh, committed,
        "v1 writer output drifted from the committed fixture"
    );
}

#[test]
fn v1_load_rejects_tampered_format_tag() {
    let dir = tempdir("v1_tamper");
    let path = dir.join("bad.json");
    let text = std::fs::read_to_string(fixture_path()).unwrap();
    std::fs::write(&path, text.replace("checkpoint-v1", "checkpoint-v9")).unwrap();
    let mut store = blank_store();
    assert!(load_checkpoint(&mut store, &path).is_err());
}

/// Rewrites the committed fixture. Gated twice (ignored + env var) so it
/// can never run by accident in CI.
#[test]
#[ignore = "fixture writer; run with CUISINE_REGEN_FIXTURES=1 -- --ignored"]
fn regenerate_v1_fixture() {
    if std::env::var("CUISINE_REGEN_FIXTURES").as_deref() != Ok("1") {
        eprintln!("set CUISINE_REGEN_FIXTURES=1 to rewrite the fixture");
        return;
    }
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    save_checkpoint_v1(&golden_store(), &path).unwrap();
    eprintln!("rewrote {}", path.display());
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cuisine_checkpoint_golden_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
