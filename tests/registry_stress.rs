//! Concurrency stress for the sharded model registry.
//!
//! The registry promises (docs/SERVING_TIER.md "Sharded registry"):
//!
//! 1. **No torn snapshot**: a concurrent `get` always returns a fully
//!    formed entry — right name, valid kind, a model that answers — no
//!    matter how many writers are mid-swap.
//! 2. **Monotone versions per name**: once a reader has seen version `v`
//!    under a name, it never sees `< v` there — except through the
//!    documented [`ModelRegistry::alias`] rollback, which deliberately
//!    republishes a prior entry.
//! 3. **A failed load leaves the prior entry servable**: the
//!    failure-keeps-prior contract holds not just sequentially (the unit
//!    tests pin that) but while readers hammer the name mid-failure.
//!
//! The suite runs in the `TENSOR_THREADS` sweep of `scripts/check.sh`
//! alongside the parallel-featurization tests.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nn::{save_checkpoint, LstmClassifier, LstmConfig, LstmPooling, SequenceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{Features, ModelManifest, ModelRegistry, ServingModel};
use textproc::Vocabulary;

/// A tiny valid model whose `tag` lets readers verify they got exactly
/// the engine a writer published (not a torn or recycled one).
struct Tagged {
    tag: u64,
}

impl ServingModel for Tagged {
    fn kind(&self) -> &'static str {
        "tagged"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn featurize(&self, tokens: &[String]) -> Features {
        Features::Ids(vec![tokens.len()])
    }

    fn predict(&self, batch: &[&Features]) -> Vec<Vec<f64>> {
        // encode the tag in the row, still summing to 1 so the warmup
        // gate admits it: readers can check the answer is self-consistent
        let p = 1.0 / (2.0 + (self.tag % 7) as f64);
        batch.iter().map(|_| vec![p, 1.0 - p]).collect()
    }
}

fn model_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("stress-{i}")).collect()
}

/// Readers spin on `get` across shards while writers `publish` and
/// `alias` concurrently: every lookup must return an intact entry and
/// versions must be monotone per name (aliases fan out to *new* names
/// here, so base names only move forward).
#[test]
fn readers_never_see_torn_state_under_publish_and_alias_storm() {
    const NAMES: usize = 12;
    const READERS: usize = 4;
    const READER_ITERS: usize = 4_000;
    const WRITER_ITERS: usize = 400;

    let registry = Arc::new(ModelRegistry::new());
    let names = model_names(NAMES);
    for (i, name) in names.iter().enumerate() {
        registry
            .publish(name, Box::new(Tagged { tag: i as u64 }))
            .expect("seed publish");
    }

    let writers_done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // writer A: republishes every base name round-robin (version bumps)
        {
            let registry = Arc::clone(&registry);
            let names = names.clone();
            scope.spawn(move || {
                for it in 0..WRITER_ITERS {
                    let name = &names[it % NAMES];
                    registry
                        .publish(name, Box::new(Tagged { tag: it as u64 }))
                        .expect("storm publish");
                }
            });
        }
        // writer B: fans base entries out to alias names (replica-style),
        // and deliberately fails loads against a directory with no
        // manifest — errors must never disturb published entries
        {
            let registry = Arc::clone(&registry);
            let names = names.clone();
            let done = Arc::clone(&writers_done);
            scope.spawn(move || {
                let bogus = std::env::temp_dir().join("registry_stress_no_such_dir");
                for it in 0..WRITER_ITERS {
                    let base = registry.get(&names[it % NAMES]).expect("base loaded");
                    registry.alias(&format!("{}@{}", base.name(), it % 3), &base);
                    assert!(
                        registry.load("stress-0", &bogus).is_err(),
                        "loading a nonexistent dir must fail"
                    );
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        for r in 0..READERS {
            let registry = Arc::clone(&registry);
            let names = names.clone();
            scope.spawn(move || {
                let mut last = [0u64; NAMES];
                for it in 0..READER_ITERS {
                    let i = (it + r) % NAMES;
                    let entry = registry.get(&names[i]).expect("published name vanished");
                    // torn-snapshot checks: the entry is internally whole
                    assert_eq!(entry.name(), names[i]);
                    assert_eq!(entry.kind(), "tagged");
                    assert!(entry.version() > 0);
                    assert!(
                        entry.version() >= last[i],
                        "version went backwards on {}: {} after {}",
                        names[i],
                        entry.version(),
                        last[i]
                    );
                    last[i] = entry.version();
                    if it % 512 == 0 {
                        let row = &entry.model().predict(&[&Features::Ids(vec![0])])[0];
                        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9, "torn model");
                    }
                }
            });
        }
    });
    assert!(writers_done.load(Ordering::Relaxed));

    // the zoo is intact: every base name still resolves, and every alias
    // points at some version its base actually published
    for name in &names {
        let base = registry.get(name).expect("base survives the storm");
        for r in 0..3 {
            if let Some(aliased) = registry.get(&format!("{name}@{r}")) {
                assert_eq!(aliased.kind(), "tagged");
                assert!(aliased.version() <= base.version());
            }
        }
    }
}

fn lstm_config() -> LstmConfig {
    LstmConfig {
        vocab: 8,
        emb_dim: 4,
        hidden: 5,
        layers: 1,
        dropout: 0.0,
        classes: 3,
        pooling: LstmPooling::LastHidden,
    }
}

fn write_lstm_dir(dir: &Path, seed: u64) {
    std::fs::create_dir_all(dir).unwrap();
    let vocab = Vocabulary::from_tokens(["stir", "onion", "bake"].map(String::from));
    let mut rng = StdRng::seed_from_u64(seed);
    let model = LstmClassifier::new(lstm_config(), &mut rng);
    ModelManifest::lstm(&lstm_config(), &vocab)
        .save(dir)
        .unwrap();
    save_checkpoint(model.store(), &dir.join("latest.ckpt")).unwrap();
}

/// The failure-keeps-prior contract under concurrency: a writer
/// alternates good reloads with loads of a corrupt checkpoint while
/// readers hammer the name. Every failed load must leave the previous
/// entry servable and the version monotone.
#[test]
fn failed_load_keeps_prior_entry_servable_under_readers() {
    let good = std::env::temp_dir().join("registry_stress_good");
    let corrupt = std::env::temp_dir().join("registry_stress_corrupt");
    for d in [&good, &corrupt] {
        let _ = std::fs::remove_dir_all(d);
    }
    write_lstm_dir(&good, 40);
    write_lstm_dir(&corrupt, 41);
    std::fs::write(corrupt.join("latest.ckpt"), b"garbage").unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let first = registry.load("lstm", &good).expect("initial load");
    let highest = Arc::new(AtomicU64::new(first.version()));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let registry = Arc::clone(&registry);
            let highest = Arc::clone(&highest);
            let done = Arc::clone(&done);
            let (good, corrupt) = (good.clone(), corrupt.clone());
            scope.spawn(move || {
                for it in 0..40 {
                    if it % 2 == 0 {
                        let v = registry.load("lstm", &good).expect("good reload").version();
                        highest.fetch_max(v, Ordering::Relaxed);
                    } else {
                        registry
                            .load("lstm", &corrupt)
                            .expect_err("corrupt checkpoint must be rejected");
                    }
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..3 {
            let registry = Arc::clone(&registry);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last = 0u64;
                let mut looked = 0usize;
                while !done.load(Ordering::Relaxed) || looked == 0 {
                    looked += 1;
                    let entry = registry
                        .get("lstm")
                        .expect("a failed load must never unpublish the prior entry");
                    assert!(entry.version() >= last, "version went backwards");
                    last = entry.version();
                    if looked.is_multiple_of(64) {
                        let row = &entry.model().predict(&[&Features::Ids(vec![0])])[0];
                        assert!(
                            row.iter().all(|p| p.is_finite()),
                            "prior entry not servable"
                        );
                    }
                }
            });
        }
    });

    // the registry finishes on the last *good* version
    assert_eq!(
        registry.get("lstm").unwrap().version(),
        highest.load(Ordering::Relaxed)
    );
    for d in [good, corrupt] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// The one documented exception to per-name monotonicity: an `alias`
/// rollback republishes a prior entry, moving the version backwards.
#[test]
fn alias_rollback_is_the_documented_version_regression() {
    let registry = ModelRegistry::new();
    let v1 = registry.publish("m", Box::new(Tagged { tag: 1 })).unwrap();
    let v2 = registry.publish("m", Box::new(Tagged { tag: 2 })).unwrap();
    assert!(v2.version() > v1.version());
    assert_eq!(registry.get("m").unwrap().version(), v2.version());

    // rollback: alias the name back to the prior handle (what a failed
    // rolling deploy does) — equality with the old version, not ordering,
    // is what cache invalidation keys on
    let rolled = registry.alias("m", &v1);
    assert_eq!(rolled.version(), v1.version());
    assert_eq!(registry.get("m").unwrap().version(), v1.version());
}
