//! End-to-end tests of the process-isolated serving tier: a supervised
//! fleet of `replica_worker` processes behind unix sockets, driven by
//! the same `ReplicaRouter` that fronts in-process fleets.
//!
//! The acceptance bar: 4 socket-backed workers serve a stream
//! bit-identical to in-process serving; `kill -9` of one worker
//! mid-stream causes zero wrong answers; the supervisor respawns it
//! through the warmup gate and the router reinstates it.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nn::{
    save_checkpoint, LrSchedule, LstmClassifier, LstmConfig, LstmPooling, SequenceModel, Sgd,
    Trainer, TrainerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{
    ModelManifest, ReplicaHandle, ReplicaHealth, RouterConfig, ServeConfig, ServeError, Supervisor,
    SupervisorConfig, WorkerPhase,
};
use textproc::Vocabulary;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_replica_worker");

const TOKENS: [&str; 8] = [
    "soy", "ginger", "rice", "basil", "tomato", "olive", "cumin", "chili",
];

const RECIPES: [(&str, usize); 6] = [
    ("soy, ginger, rice", 0),
    ("ginger, soy", 0),
    ("basil, tomato, olive", 1),
    ("tomato, olive", 1),
    ("cumin, chili, rice", 2),
    ("chili, cumin", 2),
];

fn vocab() -> Vocabulary {
    Vocabulary::from_tokens(TOKENS.map(String::from))
}

fn lstm_config() -> LstmConfig {
    LstmConfig {
        vocab: vocab().len(),
        emb_dim: 8,
        hidden: 8,
        layers: 1,
        dropout: 0.0,
        classes: 3,
        pooling: LstmPooling::LastHidden,
    }
}

fn ids(recipe: &str, v: &Vocabulary) -> Vec<usize> {
    cuisine::featurize::entity_tokens(recipe)
        .iter()
        .map(|t| v.lookup_or_unk(t) as usize)
        .collect()
}

/// Trains a tiny LSTM and writes a servable model directory; returns
/// the in-process model as bit-exact ground truth.
fn train_and_export_seeded(dir: &Path, seed: u64) -> LstmClassifier {
    std::fs::create_dir_all(dir).unwrap();
    let v = vocab();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LstmClassifier::new(lstm_config(), &mut rng);
    let examples: Vec<(Vec<usize>, usize)> =
        RECIPES.iter().map(|&(r, y)| (ids(r, &v), y)).collect();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 30,
        batch_size: 2,
        schedule: LrSchedule::Constant(0.1),
        seed: 7,
        ..TrainerConfig::default()
    });
    trainer
        .fit(&mut model, &mut Sgd::new(0.0), &examples, None)
        .unwrap();
    ModelManifest::lstm(&lstm_config(), &v).save(dir).unwrap();
    save_checkpoint(model.store(), &dir.join("latest.ckpt")).unwrap();
    model
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn reference_probs(model: &LstmClassifier, recipe: &str) -> Vec<f64> {
    model
        .predict_proba_batch(&[&ids(recipe, &vocab())])
        .remove(0)
}

/// Distinct recipe texts that spread across the hash ring.
fn spread_recipes(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let (base, _) = RECIPES[i % RECIPES.len()];
            format!("{base}, mystery-{i}")
        })
        .collect()
}

/// A supervisor config with test-friendly (fast) timing.
fn test_config(name: &str, model_dir: &Path) -> SupervisorConfig {
    let mut config = SupervisorConfig::new(WORKER_BIN, model_dir, temp_dir(name));
    config.model_name = "lstm".into();
    config.serve = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    config.ping_interval = Duration::from_millis(25);
    config.backoff_base = Duration::from_millis(25);
    config.backoff_cap = Duration::from_millis(250);
    config.start_grace = Duration::from_secs(30);
    config
}

fn counter(name: &str) -> u64 {
    trace::snapshot().counter(name).unwrap_or(0)
}

/// The process-isolation acceptance test, end to end.
#[test]
fn socket_fleet_serves_bit_identical_and_recovers_from_kill9() {
    trace::enable();
    let model_dir = temp_dir("sup_it_kill9_model");
    let reference = train_and_export_seeded(&model_dir, 42);
    let mut config = test_config("sup_it_kill9_sockets", &model_dir);
    config.workers = 4;
    let supervisor = Supervisor::start(config).unwrap();
    assert!(
        supervisor.wait_all_up(Duration::from_secs(60)),
        "fleet never came up: {:?}",
        supervisor.phases()
    );

    let router = supervisor
        .router(RouterConfig {
            probe_after: Duration::from_millis(50),
            ..RouterConfig::default()
        })
        .unwrap();
    let recipes = spread_recipes(40);

    // phase 1: the socket fleet answers bit-identically to the
    // in-process model
    for recipe in &recipes {
        let prediction = router.classify(recipe, None).unwrap();
        assert_eq!(
            prediction.probs,
            reference_probs(&reference, recipe),
            "socket-backed answer drifted for {recipe:?}"
        );
    }

    // phase 2: kill -9 one worker mid-stream. Zero wrong answers
    // allowed — requests that hash onto the corpse fail over to ring
    // neighbors and are answered identically.
    let respawns_before = counter("serve.supervisor.respawns");
    let killed_pid = supervisor.kill_worker(0).expect("worker 0 has a pid");
    for round in 0..5 {
        for recipe in &recipes {
            let prediction = router
                .classify(recipe, None)
                .unwrap_or_else(|e| panic!("request failed after kill -9 (round {round}): {e}"));
            assert_eq!(
                prediction.probs,
                reference_probs(&reference, recipe),
                "WRONG answer after kill -9 for {recipe:?}"
            );
        }
    }

    // phase 3: the supervisor notices the corpse and respawns it through
    // the warmup gate (a worker only answers pings once its checkpoint
    // loaded and passed the gate)
    assert!(
        supervisor.wait_up(0, Duration::from_secs(60)),
        "killed worker was never respawned: {:?}",
        supervisor.phases()
    );
    assert!(
        counter("serve.supervisor.respawns") > respawns_before,
        "respawn must be counted in serve.supervisor.respawns"
    );
    assert_eq!(supervisor.phases()[0], WorkerPhase::Up);
    let new_pid = supervisor
        .worker_pid(0)
        .expect("respawned worker has a pid");
    assert_ne!(new_pid, killed_pid, "slot 0 must be a fresh process");

    // phase 4: the router reinstates the respawned replica via
    // probe-back, under continued (still bit-identical) traffic
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for recipe in &recipes {
            let prediction = router.classify(recipe, None).unwrap();
            assert_eq!(
                prediction.probs,
                reference_probs(&reference, recipe),
                "answer drifted during reinstatement for {recipe:?}"
            );
        }
        if router.health().iter().all(|h| *h == ReplicaHealth::Healthy) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "respawned replica was never reinstated: {:?}",
            router.health()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // per-replica answer counts: every worker, including the respawned
    // one, answered real traffic
    let stats = supervisor.pong_stats();
    assert_eq!(stats.len(), 4);
    for (i, stat) in stats.iter().enumerate() {
        let stat = stat.unwrap_or_else(|| panic!("worker {i} unreachable at the end"));
        assert!(stat.served > 0, "worker {i} answered no requests: {stat:?}");
    }

    drop(router);
    drop(supervisor);
    std::fs::remove_dir_all(&model_dir).unwrap();
}

#[test]
fn crash_loop_opens_the_circuit_breaker() {
    trace::enable();
    let model_dir = temp_dir("sup_it_breaker_model");
    train_and_export_seeded(&model_dir, 42);
    let mut config = test_config("sup_it_breaker_sockets", &model_dir);
    config.workers = 1;
    config.backoff_base = Duration::from_millis(5);
    config.backoff_cap = Duration::from_millis(20);
    config.breaker_limit = 3;
    config.breaker_window = Duration::from_secs(30);
    // no marker file: the fault fires on every (re)spawn — a true crash loop
    config.worker_env = vec![("REPLICA_WORKER_FAULT".into(), "exit-on-start".into())];
    let breaker_before = counter("serve.supervisor.breaker_opens");
    let supervisor = Supervisor::start(config).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while supervisor.phases()[0] != WorkerPhase::Broken {
        assert!(
            Instant::now() < deadline,
            "crash loop never opened the breaker: {:?}",
            supervisor.phases()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        counter("serve.supervisor.breaker_opens") > breaker_before,
        "breaker trip must be counted"
    );
    assert!(counter("serve.supervisor.crashes") > 0);
    drop(supervisor);
    std::fs::remove_dir_all(&model_dir).unwrap();
}

/// Drives one fault-injected worker directly through its
/// [`serve::RemoteReplica`] handle and asserts the client retried on a
/// fresh connection and still got the right answer.
fn frame_fault_round_trip(name: &str, fault: &str) {
    trace::enable();
    let model_dir = temp_dir(&format!("sup_it_{name}_model"));
    let reference = train_and_export_seeded(&model_dir, 42);
    let marker = temp_dir(&format!("sup_it_{name}_marker")).with_extension("fired");
    let _ = std::fs::remove_file(&marker);
    let mut config = test_config(&format!("sup_it_{name}_sockets"), &model_dir);
    config.workers = 1;
    config.worker_env = vec![
        ("REPLICA_WORKER_FAULT".into(), fault.into()),
        (
            "REPLICA_WORKER_FAULT_MARKER".into(),
            marker.display().to_string(),
        ),
    ];
    let supervisor = Supervisor::start(config).unwrap();
    assert!(supervisor.wait_all_up(Duration::from_secs(60)));
    let handle = supervisor.handles().remove(0);

    let retries_before = counter("serve.transport.retries");
    // enough requests to cross the fault's threshold (it fires after the
    // 2nd answered classify) and then some
    for (i, recipe) in spread_recipes(8).iter().enumerate() {
        let tokens = cuisine::featurize::entity_tokens(recipe);
        let key = tokens.join("\x1f");
        let prediction = handle
            .classify_prepared(tokens, key, None)
            .unwrap_or_else(|e| panic!("request {i} failed across the injected fault: {e}"));
        assert_eq!(
            prediction.probs,
            reference_probs(&reference, recipe),
            "request {i} got a wrong answer across the injected fault"
        );
    }
    assert!(
        counter("serve.transport.retries") > retries_before,
        "the corrupted frame must surface as a client retry"
    );
    assert!(marker.exists(), "the fault must have fired exactly once");
    drop(supervisor);
    std::fs::remove_dir_all(&model_dir).unwrap();
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn corrupt_crc_frame_is_retried_on_a_fresh_connection() {
    frame_fault_round_trip("crc", "corrupt-crc:2");
}

#[test]
fn truncated_frame_is_retried_on_a_fresh_connection() {
    frame_fault_round_trip("trunc", "truncate-frame:2");
}

#[test]
fn hung_worker_is_killed_and_respawned() {
    trace::enable();
    let model_dir = temp_dir("sup_it_hang_model");
    let reference = train_and_export_seeded(&model_dir, 42);
    let marker = temp_dir("sup_it_hang_marker").with_extension("fired");
    let _ = std::fs::remove_file(&marker);
    let mut config = test_config("sup_it_hang_sockets", &model_dir);
    config.workers = 1;
    // the hung worker binds its socket fast (the model is tiny), so a
    // short grace keeps the test quick; strikes × interval adds ~50 ms
    config.start_grace = Duration::from_secs(3);
    config.ping_timeout = Duration::from_millis(200);
    config.ping_strikes = 2;
    config.worker_env = vec![
        ("REPLICA_WORKER_FAULT".into(), "hang-accept".into()),
        (
            "REPLICA_WORKER_FAULT_MARKER".into(),
            marker.display().to_string(),
        ),
    ];
    let hangs_before = counter("serve.supervisor.hangs");
    let supervisor = Supervisor::start(config).unwrap();

    // the first incarnation hangs on accept: alive (bind succeeded, so
    // connects ride the backlog) but never answering. The supervisor
    // must declare it hung, kill it, and respawn it — and the respawn
    // (marker present) comes up healthy.
    assert!(
        supervisor.wait_up(0, Duration::from_secs(60)),
        "hung worker was never replaced by a healthy one: {:?}",
        supervisor.phases()
    );
    assert!(
        counter("serve.supervisor.hangs") > hangs_before,
        "the hang must be counted in serve.supervisor.hangs"
    );
    assert!(marker.exists(), "the hang fault must have fired");

    // the replacement serves correct answers
    let handle = supervisor.handles().remove(0);
    let recipe = "soy, ginger, rice";
    let tokens = cuisine::featurize::entity_tokens(recipe);
    let key = tokens.join("\x1f");
    let prediction = handle.classify_prepared(tokens, key, None).unwrap();
    assert_eq!(prediction.probs, reference_probs(&reference, recipe));

    drop(supervisor);
    std::fs::remove_dir_all(&model_dir).unwrap();
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn rolling_deploy_promotes_and_bad_checkpoint_is_gated() {
    trace::enable();
    let dir_a = temp_dir("sup_it_deploy_a");
    let dir_b = temp_dir("sup_it_deploy_b");
    let model_a = train_and_export_seeded(&dir_a, 42);
    let model_b = train_and_export_seeded(&dir_b, 4242);
    let recipes = spread_recipes(8);
    assert!(
        recipes
            .iter()
            .any(|r| reference_probs(&model_a, r) != reference_probs(&model_b, r)),
        "seeds 42 and 4242 produced identical models"
    );

    let mut config = test_config("sup_it_deploy_sockets", &dir_a);
    config.workers = 2;
    let supervisor = Supervisor::start(config).unwrap();
    assert!(supervisor.wait_all_up(Duration::from_secs(60)));
    let router = supervisor.router(RouterConfig::default()).unwrap();

    for recipe in &recipes {
        assert_eq!(
            router.classify(recipe, None).unwrap().probs,
            reference_probs(&model_a, recipe)
        );
    }

    // roll B across the fleet: every Up worker reloads through its own
    // warmup gate and reports a bumped version
    let promoted = supervisor.deploy(&dir_b).unwrap();
    assert_eq!(promoted.len(), 2, "both workers must be promoted");
    for (slot, version) in &promoted {
        assert!(
            *version >= 2,
            "worker {slot} must bump its registry version, got {version}"
        );
    }
    for recipe in &recipes {
        assert_eq!(
            router.classify(recipe, None).unwrap().probs,
            reference_probs(&model_b, recipe),
            "fleet still serving version A after deploy"
        );
    }

    // a handle-backed router has no registry of its own: deploys go
    // through the supervisor
    match router.deploy(&dir_a) {
        Err(ServeError::Internal(what)) => {
            assert!(what.contains("supervisor"), "{what:?}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }

    // a broken checkpoint dies at the supervisor's pre-promotion gate:
    // no worker ever sees it, the fleet keeps serving B
    let broken = temp_dir("sup_it_deploy_broken");
    std::fs::create_dir_all(&broken).unwrap();
    ModelManifest::lstm(&lstm_config(), &vocab())
        .save(&broken)
        .unwrap();
    std::fs::write(broken.join("latest.ckpt"), b"not a checkpoint").unwrap();
    match supervisor.deploy(&broken) {
        Err(ServeError::DeployFailed(what)) => {
            assert!(what.contains("before promotion"), "{what:?}");
        }
        other => panic!("expected DeployFailed, got {other:?}"),
    }
    for recipe in &recipes {
        assert_eq!(
            router.classify(recipe, None).unwrap().probs,
            reference_probs(&model_b, recipe),
            "failed deploy disturbed serving"
        );
    }

    drop(router);
    drop(supervisor);
    for dir in [dir_a, dir_b, broken] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
