//! End-to-end test of the trained-model lifecycle: train a tiny LSTM,
//! checkpoint it with a serve manifest, load it through the registry,
//! and drive it through the batch server under concurrency, overload,
//! and shutdown.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use nn::{
    save_checkpoint, LrSchedule, LstmClassifier, LstmConfig, LstmPooling, SequenceModel, Sgd,
    Trainer, TrainerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{
    BatchServer, Features, ModelManifest, ModelRegistry, ReplicaHealth, ReplicaRouter,
    RouterConfig, ServeConfig, ServeError, ServingModel,
};
use textproc::Vocabulary;

const TOKENS: [&str; 8] = [
    "soy", "ginger", "rice", "basil", "tomato", "olive", "cumin", "chili",
];

/// Three toy cuisines with disjoint signature ingredients.
const RECIPES: [(&str, usize); 6] = [
    ("soy, ginger, rice", 0),
    ("ginger, soy", 0),
    ("basil, tomato, olive", 1),
    ("tomato, olive", 1),
    ("cumin, chili, rice", 2),
    ("chili, cumin", 2),
];

fn vocab() -> Vocabulary {
    Vocabulary::from_tokens(TOKENS.map(String::from))
}

fn lstm_config() -> LstmConfig {
    LstmConfig {
        vocab: vocab().len(),
        emb_dim: 8,
        hidden: 8,
        layers: 1,
        dropout: 0.0,
        classes: 3,
        pooling: LstmPooling::LastHidden,
    }
}

fn ids(recipe: &str, v: &Vocabulary) -> Vec<usize> {
    cuisine::featurize::entity_tokens(recipe)
        .iter()
        .map(|t| v.lookup_or_unk(t) as usize)
        .collect()
}

/// Trains a tiny LSTM on the toy recipes and writes a servable model
/// directory (manifest + checkpoint). Returns the in-process model as
/// ground truth.
fn train_and_export(dir: &Path) -> LstmClassifier {
    train_and_export_seeded(dir, 42)
}

/// Like [`train_and_export`] with a chosen init seed — different seeds
/// give bitwise-distinguishable checkpoints, which is how the deploy
/// tests tell the old version's answers from the new one's.
fn train_and_export_seeded(dir: &Path, seed: u64) -> LstmClassifier {
    std::fs::create_dir_all(dir).unwrap();
    let v = vocab();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LstmClassifier::new(lstm_config(), &mut rng);
    let examples: Vec<(Vec<usize>, usize)> =
        RECIPES.iter().map(|&(r, y)| (ids(r, &v), y)).collect();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 30,
        batch_size: 2,
        schedule: LrSchedule::Constant(0.1),
        seed: 7,
        ..TrainerConfig::default()
    });
    trainer
        .fit(&mut model, &mut Sgd::new(0.0), &examples, None)
        .unwrap();

    ModelManifest::lstm(&lstm_config(), &v).save(dir).unwrap();
    save_checkpoint(model.store(), &dir.join("latest.ckpt")).unwrap();
    model
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trained_checkpoint_serves_bit_identical_batched_predictions() {
    let dir = temp_dir("serve_it_lifecycle");
    let reference = train_and_export(&dir);
    let v = vocab();

    // the trained model actually learned the toy task
    let train_seqs: Vec<Vec<usize>> = RECIPES.iter().map(|(r, _)| ids(r, &v)).collect();
    let train_refs: Vec<&[usize]> = train_seqs.iter().map(Vec::as_slice).collect();
    let probs = reference.predict_proba_batch(&train_refs);
    for (row, &(_, y)) in probs.iter().zip(RECIPES.iter()) {
        let top = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, y, "tiny LSTM failed to fit the toy recipes");
    }

    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    // fire all requests concurrently so the worker actually batches them
    let barrier = Arc::new(Barrier::new(RECIPES.len()));
    let handles: Vec<_> = RECIPES
        .iter()
        .map(|&(recipe, _)| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (recipe, server.classify(recipe, None).unwrap())
            })
        })
        .collect();

    let mut max_batch_seen = 0;
    for h in handles {
        let (recipe, prediction) = h.join().unwrap();
        // batched service answer == direct in-process model answer, bitwise
        let expected = reference.predict_proba_batch(&[&ids(recipe, &v)]);
        assert_eq!(prediction.probs, expected[0], "mismatch for {recipe:?}");
        max_batch_seen = max_batch_seen.max(prediction.batch_size);
    }
    assert!(
        max_batch_seen > 1,
        "six concurrent requests never shared a batch"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let dir = temp_dir("serve_it_overload");
    train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    // max_batch exceeds queue_capacity, so the worker keeps its
    // accumulation window open for the full max_delay while both fillers
    // sit in the queue — plenty of time for the probe to hit a full queue
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_secs(2),
                queue_capacity: 2,
                cache_capacity: 0,
            },
        )
        .unwrap(),
    );

    // occupy both queue slots with blocking callers
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.classify("soy, ginger", None))
        })
        .collect();
    // wait until both are actually enqueued (the worker holds the first
    // batch open for max_delay, so depth stays observable)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "fillers never reached the queue"
        );
        std::thread::yield_now();
    }

    match server.classify("basil, tomato", None) {
        Err(ServeError::Overloaded { depth, capacity }) => {
            assert_eq!(capacity, 2);
            assert!(depth >= 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    for f in fillers {
        assert!(f.join().unwrap().is_ok(), "queued fillers must be served");
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shutdown_drains_queued_requests() {
    let dir = temp_dir("serve_it_drain");
    train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 4,
                // long fill window: requests are still queued when
                // shutdown lands, forcing the drain path to answer them
                max_delay: Duration::from_secs(2),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    let clients: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.classify("cumin, chili", None))
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "clients never reached the queue"
        );
        std::thread::yield_now();
    }

    server.shutdown();
    for c in clients {
        let prediction = c.join().unwrap();
        assert!(
            prediction.is_ok(),
            "in-flight request dropped during shutdown: {prediction:?}"
        );
    }
    // new work after shutdown is refused
    assert_eq!(server.classify("soy", None), Err(ServeError::ShuttingDown));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Distinct recipe texts that spread across the hash ring (extra unknown
/// tokens change the routing key without changing the toy vocabulary).
fn spread_recipes(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let (base, _) = RECIPES[i % RECIPES.len()];
            format!("{base}, mystery-{i}")
        })
        .collect()
}

fn reference_probs(model: &LstmClassifier, recipe: &str) -> Vec<f64> {
    model
        .predict_proba_batch(&[&ids(recipe, &vocab())])
        .remove(0)
}

#[test]
fn router_spreads_requests_and_stays_bit_identical() {
    let dir = temp_dir("serve_it_router_spread");
    let reference = train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let router = Arc::new(
        ReplicaRouter::start(
            Arc::clone(&registry),
            "lstm",
            RouterConfig {
                replicas: 3,
                serve: ServeConfig {
                    max_batch: 8,
                    max_delay: Duration::from_millis(2),
                    ..ServeConfig::default()
                },
                ..RouterConfig::default()
            },
        )
        .unwrap(),
    );

    let recipes = spread_recipes(30);
    let handles: Vec<_> = recipes
        .iter()
        .map(|recipe| {
            let router = Arc::clone(&router);
            let recipe = recipe.clone();
            std::thread::spawn(move || {
                let prediction = router.classify(&recipe, None).unwrap();
                (recipe, prediction)
            })
        })
        .collect();
    for h in handles {
        let (recipe, prediction) = h.join().unwrap();
        // replicated answers == direct in-process model answers, bitwise
        assert_eq!(
            prediction.probs,
            reference_probs(&reference, &recipe),
            "replica answer drifted for {recipe:?}"
        );
    }
    assert_eq!(router.health(), vec![ReplicaHealth::Healthy; 3]);
    router.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replica_death_mid_stream_ejects_and_fails_over() {
    let dir = temp_dir("serve_it_router_death");
    let reference = train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let router = ReplicaRouter::start(
        Arc::clone(&registry),
        "lstm",
        RouterConfig {
            replicas: 2,
            serve: ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
            // keep the dead replica from being probed back mid-test
            probe_after: Duration::from_secs(3600),
            ..RouterConfig::default()
        },
    )
    .unwrap();

    // kill replica 0 mid-stream, then keep serving: every request still
    // gets the right answer, and the dead replica is ejected the first
    // time a request hashes onto it
    router.shutdown_replica(0);
    for recipe in spread_recipes(40) {
        let prediction = router.classify(&recipe, None).unwrap();
        assert_eq!(
            prediction.probs,
            reference_probs(&reference, &recipe),
            "failover changed the answer for {recipe:?}"
        );
    }
    assert_eq!(
        router.health(),
        vec![ReplicaHealth::Ejected, ReplicaHealth::Healthy],
        "dead replica must be ejected, live one must not be"
    );
    router.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rolling_deploy_under_traffic_serves_only_gated_versions() {
    let dir_a = temp_dir("serve_it_router_deploy_a");
    let dir_b = temp_dir("serve_it_router_deploy_b");
    let model_a = train_and_export_seeded(&dir_a, 42);
    let model_b = train_and_export_seeded(&dir_b, 4242);

    let recipes = spread_recipes(8);
    // the two checkpoints must be bitwise distinguishable, else the
    // "only old-or-new answers" assertion below is vacuous
    assert!(
        recipes
            .iter()
            .any(|r| reference_probs(&model_a, r) != reference_probs(&model_b, r)),
        "seeds 42 and 4242 produced identical models"
    );

    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir_a).unwrap();
    let router = Arc::new(
        ReplicaRouter::start(
            Arc::clone(&registry),
            "lstm",
            RouterConfig {
                replicas: 2,
                serve: ServeConfig {
                    max_batch: 8,
                    max_delay: Duration::from_millis(1),
                    ..ServeConfig::default()
                },
                ..RouterConfig::default()
            },
        )
        .unwrap(),
    );

    // hammer the router from several threads while the deploy runs; every
    // answer must be exactly version A's or version B's — an unwarmed or
    // half-promoted model would produce something else
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|t| {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let recipes = recipes.clone();
            std::thread::spawn(move || {
                let mut answers = Vec::new();
                let mut i = t;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let recipe = &recipes[i % recipes.len()];
                    answers.push((recipe.clone(), router.classify(recipe, None).unwrap()));
                    i += 1;
                }
                answers
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(20));
    let report = router.deploy(&dir_b).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    assert_eq!(report.previous_versions.len(), 2);
    assert_eq!(report.replica_versions.len(), 2);
    for (old, new) in report
        .previous_versions
        .iter()
        .zip(report.replica_versions.iter())
    {
        assert!(new > old, "deploy must bump every replica's version");
    }

    let mut unwarmed = 0usize;
    let mut total = 0usize;
    for c in clients {
        for (recipe, prediction) in c.join().unwrap() {
            total += 1;
            let a = reference_probs(&model_a, &recipe);
            let b = reference_probs(&model_b, &recipe);
            if prediction.probs != a && prediction.probs != b {
                unwarmed += 1;
            }
        }
    }
    assert!(total > 0, "clients never got a request through");
    assert_eq!(
        unwarmed, 0,
        "{unwarmed}/{total} answers came from a version that never passed the warmup gate"
    );

    // after the deploy settles, everything serves version B
    for recipe in &recipes {
        assert_eq!(
            router.classify(recipe, None).unwrap().probs,
            reference_probs(&model_b, recipe),
            "replica still serving the old version after deploy"
        );
    }
    router.shutdown();
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn failed_deploy_rolls_back_and_keeps_serving_the_old_version() {
    let dir = temp_dir("serve_it_router_rollback");
    let broken = temp_dir("serve_it_router_rollback_broken");
    let reference = train_and_export(&dir);
    // a checkpoint that cannot load: valid manifest, garbage weights
    std::fs::create_dir_all(&broken).unwrap();
    ModelManifest::lstm(&lstm_config(), &vocab())
        .save(&broken)
        .unwrap();
    std::fs::write(broken.join("latest.ckpt"), b"not a checkpoint").unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let old_version = registry.get("lstm").unwrap().version();
    let router = ReplicaRouter::start(
        Arc::clone(&registry),
        "lstm",
        RouterConfig {
            replicas: 2,
            ..RouterConfig::default()
        },
    )
    .unwrap();

    match router.deploy(&broken) {
        Err(ServeError::DeployFailed(what)) => {
            assert!(
                what.contains("before promotion"),
                "bad checkpoint must die at the pre-promotion gate: {what:?}"
            );
        }
        other => panic!("expected DeployFailed, got {other:?}"),
    }

    // nothing moved: same versions, same bit-identical answers
    assert_eq!(registry.get("lstm").unwrap().version(), old_version);
    for recipe in spread_recipes(10) {
        assert_eq!(
            router.classify(&recipe, None).unwrap().probs,
            reference_probs(&reference, &recipe),
            "failed deploy disturbed serving for {recipe:?}"
        );
    }
    router.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&broken).unwrap();
}

/// A model whose forward pass blocks until the test opens the gate —
/// lets the tests saturate replica queues deterministically.
struct GatedModel {
    gate: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

impl ServingModel for GatedModel {
    fn kind(&self) -> &'static str {
        "gated"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn featurize(&self, tokens: &[String]) -> Features {
        Features::Ids(vec![tokens.len()])
    }

    fn predict(&self, batch: &[&Features]) -> Vec<Vec<f64>> {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        batch.iter().map(|_| vec![0.5, 0.5]).collect()
    }
}

/// Starts a single-replica router over a fresh [`GatedModel`] registry.
fn gated_router(
    config: RouterConfig,
) -> (
    Arc<ReplicaRouter>,
    Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
) {
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let registry = Arc::new(ModelRegistry::new());
    // warmup would block on the closed gate; the gate IS the test fixture
    registry.set_warmup(false);
    registry
        .publish(
            "gated",
            Box::new(GatedModel {
                gate: Arc::clone(&gate),
            }),
        )
        .unwrap();
    let router = Arc::new(ReplicaRouter::start(registry, "gated", config).unwrap());
    (router, gate)
}

fn open_gate(gate: &(std::sync::Mutex<bool>, std::sync::Condvar)) {
    let (lock, cvar) = gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
}

#[test]
fn router_sheds_load_at_the_aggregate_watermark() {
    let (router, gate) = gated_router(RouterConfig {
        replicas: 1,
        shed_watermark: 3,
        serve: ServeConfig {
            max_batch: 1,
            max_delay: Duration::from_millis(1),
            queue_capacity: 8,
            cache_capacity: 0,
        },
        ..RouterConfig::default()
    });

    // one request enters the (blocked) forward pass, the rest pile up in
    // the queue; fillers retry when they get shed themselves, so the
    // depth settles exactly at the watermark
    let fillers: Vec<_> = (0..4)
        .map(|i| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || loop {
                match router.classify(&format!("filler, dish-{i}"), None) {
                    Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                    other => return other,
                }
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while router.queue_depths().iter().sum::<usize>() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "fillers never reached the watermark: depths {:?}",
            router.queue_depths()
        );
        std::thread::yield_now();
    }

    match router.classify("one, too, many", None) {
        Err(ServeError::Overloaded { depth, capacity }) => {
            assert_eq!(capacity, 3, "shed must report the watermark");
            assert!(depth >= 3, "shed must report the aggregate depth");
        }
        other => panic!("expected the watermark to shed, got {other:?}"),
    }

    // open the gate: every filler is (eventually) served
    open_gate(&gate);
    for f in fillers {
        assert!(f.join().unwrap().is_ok(), "queued fillers must be served");
    }
    router.shutdown();
}

#[test]
fn saturated_replica_is_ejected_then_probed_back() {
    // watermark far above the per-replica queue capacity: the replica
    // itself answers Overloaded, which is the ejection signal
    let (router, gate) = gated_router(RouterConfig {
        replicas: 1,
        shed_watermark: 100,
        eject_after: 1,
        probe_after: Duration::from_millis(20),
        serve: ServeConfig {
            max_batch: 1,
            max_delay: Duration::from_millis(1),
            queue_capacity: 2,
            cache_capacity: 0,
        },
        ..RouterConfig::default()
    });

    let fillers: Vec<_> = (0..3)
        .map(|i| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || loop {
                match router.classify(&format!("filler, dish-{i}"), None) {
                    Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                    other => return other,
                }
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while router.queue_depths().iter().sum::<usize>() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "fillers never filled the replica queue: depths {:?}",
            router.queue_depths()
        );
        std::thread::yield_now();
    }

    // the full replica queue bounces this request; one strike ejects
    match router.classify("one, too, many", None) {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected the saturated replica to reject, got {other:?}"),
    }
    assert_eq!(
        router.health(),
        vec![ReplicaHealth::Ejected],
        "one strike with eject_after=1 must eject"
    );

    open_gate(&gate);
    for f in fillers {
        assert!(f.join().unwrap().is_ok(), "queued fillers must be served");
    }

    // once the replica serves again (via probe or forced dispatch), it
    // must be reinstated
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if router.classify("probe, me", None).is_ok()
            && router.health() == vec![ReplicaHealth::Healthy]
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replica was never reinstated: {:?}",
            router.health()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    router.shutdown();
}

/// Counts `featurize` calls: how the parallel-featurization tests prove
/// the worker computed (or shared) exactly the features it should have.
struct CountingModel {
    featurizes: Arc<std::sync::atomic::AtomicUsize>,
}

impl ServingModel for CountingModel {
    fn kind(&self) -> &'static str {
        "counting"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn featurize(&self, tokens: &[String]) -> Features {
        self.featurizes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Features::Ids(vec![tokens.len()])
    }

    fn predict(&self, batch: &[&Features]) -> Vec<Vec<f64>> {
        batch.iter().map(|_| vec![0.5, 0.5]).collect()
    }
}

fn counting_server(
    cache_capacity: usize,
) -> (Arc<BatchServer>, Arc<std::sync::atomic::AtomicUsize>) {
    let featurizes = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let registry = Arc::new(ModelRegistry::new());
    registry
        .publish(
            "counting",
            Box::new(CountingModel {
                featurizes: Arc::clone(&featurizes),
            }),
        )
        .unwrap();
    let server = Arc::new(
        BatchServer::start(
            registry,
            "counting",
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(5),
                queue_capacity: 16,
                cache_capacity,
            },
        )
        .unwrap(),
    );
    (server, featurizes)
}

/// A batch full of cache misses rides the tensor pool (one tile per
/// miss) and must stay bit-identical to the direct in-process model —
/// this is the suite the `TENSOR_THREADS={1,2,4}` sweep exercises.
#[test]
fn parallel_featurization_is_bit_identical_to_the_direct_model() {
    let dir = temp_dir("serve_it_parallel_feat");
    let reference = train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 12,
                max_delay: Duration::from_millis(5),
                queue_capacity: 16,
                cache_capacity: 16,
            },
        )
        .unwrap(),
    );

    // six distinct recipes (distinct canonical cache keys) fired
    // together: the worker featurizes every miss through the pool inside
    // one (or few) fused passes
    let recipes = spread_recipes(6);
    let barrier = Arc::new(Barrier::new(recipes.len()));
    let handles: Vec<_> = recipes
        .iter()
        .map(|recipe| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let recipe = recipe.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let prediction = server.classify(&recipe, None).unwrap();
                (recipe, prediction)
            })
        })
        .collect();
    let mut max_batch_seen = 0;
    for h in handles {
        let (recipe, prediction) = h.join().unwrap();
        assert_eq!(
            prediction.probs,
            reference_probs(&reference, &recipe),
            "parallel featurization drifted for {recipe:?}"
        );
        assert!(!prediction.cache_hit, "distinct keys cannot hit the cache");
        max_batch_seen = max_batch_seen.max(prediction.batch_size);
    }
    assert!(
        max_batch_seen > 1,
        "six concurrent requests never shared a batch"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Duplicate keys inside one batch share a single featurize call — the
/// first occurrence misses and computes, later ones are cache hits on
/// the just-reserved slot, exactly as the serial path behaved.
#[test]
fn duplicate_keys_share_one_featurize_and_report_cache_hits() {
    let (server, featurizes) = counting_server(8);
    let barrier = Arc::new(Barrier::new(6));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                server.classify("soy, ginger, rice", None).unwrap()
            })
        })
        .collect();
    let mut hits = 0;
    for h in handles {
        let prediction = h.join().unwrap();
        assert_eq!(prediction.probs, vec![0.5, 0.5]);
        if prediction.cache_hit {
            hits += 1;
        }
    }
    assert_eq!(
        featurizes.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "six requests for one key must featurize exactly once"
    );
    assert_eq!(hits, 5, "every request after the first must hit the cache");
    server.shutdown();
}

/// `cache_capacity: 0` disables memoization entirely: every request
/// featurizes, none reports a cache hit — the lazy-slot pass must not
/// accidentally introduce sharing the serial path didn't have.
#[test]
fn zero_capacity_cache_featurizes_every_request() {
    let (server, featurizes) = counting_server(0);
    for _ in 0..4 {
        let prediction = server.classify("soy, ginger, rice", None).unwrap();
        assert!(!prediction.cache_hit, "capacity 0 cannot produce hits");
    }
    assert_eq!(
        featurizes.load(std::sync::atomic::Ordering::Relaxed),
        4,
        "a disabled cache must featurize every request"
    );
    server.shutdown();
}

/// A model that panics when it sees the poisoned ingredient — the
/// lock-poisoning regression fixture: one bad request must answer an
/// error, not unwind through a lock and wedge the whole fleet.
struct PanickyModel;

impl ServingModel for PanickyModel {
    fn kind(&self) -> &'static str {
        "panicky"
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn featurize(&self, tokens: &[String]) -> Features {
        Features::Ids(
            tokens
                .iter()
                .map(|t| if t == "poison" { 999 } else { 1 })
                .collect(),
        )
    }

    fn predict(&self, batch: &[&Features]) -> Vec<Vec<f64>> {
        for features in batch {
            if let Features::Ids(ids) = features {
                assert!(!ids.contains(&999), "injected model panic");
            }
        }
        batch.iter().map(|_| vec![0.25, 0.75]).collect()
    }
}

#[test]
fn model_panic_does_not_poison_the_fleet() {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish("panicky", Box::new(PanickyModel)).unwrap();
    let router = ReplicaRouter::start(
        Arc::clone(&registry),
        "panicky",
        RouterConfig {
            replicas: 2,
            serve: ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        },
    )
    .unwrap();

    assert!(router.classify("salt, pepper", None).is_ok());

    // the poisoned request panics inside the model's forward pass, on a
    // worker thread holding the batch: the panic must be contained to
    // that batch (answered `Canceled`), not unwind into the caller
    match router.classify("poison, salt", None) {
        Err(ServeError::Canceled) => {}
        other => panic!("expected Canceled from the panicked batch, got {other:?}"),
    }

    // the fleet keeps serving
    for i in 0..20 {
        let prediction = router
            .classify(&format!("salt, pepper, extra-{i}"), None)
            .unwrap();
        assert_eq!(prediction.probs, vec![0.25, 0.75]);
    }

    // and the registry is not wedged: reads and writes both still work
    assert!(registry.get("panicky").is_some());
    assert!(registry.names().iter().any(|n| n == "panicky"));
    registry.publish("second", Box::new(PanickyModel)).unwrap();
    assert!(registry.get("second").is_some());

    router.shutdown();
}
