//! End-to-end test of the trained-model lifecycle: train a tiny LSTM,
//! checkpoint it with a serve manifest, load it through the registry,
//! and drive it through the batch server under concurrency, overload,
//! and shutdown.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use nn::{
    save_checkpoint, LrSchedule, LstmClassifier, LstmConfig, LstmPooling, SequenceModel, Sgd,
    Trainer, TrainerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{BatchServer, ModelManifest, ModelRegistry, ServeConfig, ServeError};
use textproc::Vocabulary;

const TOKENS: [&str; 8] = [
    "soy", "ginger", "rice", "basil", "tomato", "olive", "cumin", "chili",
];

/// Three toy cuisines with disjoint signature ingredients.
const RECIPES: [(&str, usize); 6] = [
    ("soy, ginger, rice", 0),
    ("ginger, soy", 0),
    ("basil, tomato, olive", 1),
    ("tomato, olive", 1),
    ("cumin, chili, rice", 2),
    ("chili, cumin", 2),
];

fn vocab() -> Vocabulary {
    Vocabulary::from_tokens(TOKENS.map(String::from))
}

fn lstm_config() -> LstmConfig {
    LstmConfig {
        vocab: vocab().len(),
        emb_dim: 8,
        hidden: 8,
        layers: 1,
        dropout: 0.0,
        classes: 3,
        pooling: LstmPooling::LastHidden,
    }
}

fn ids(recipe: &str, v: &Vocabulary) -> Vec<usize> {
    cuisine::featurize::entity_tokens(recipe)
        .iter()
        .map(|t| v.lookup_or_unk(t) as usize)
        .collect()
}

/// Trains a tiny LSTM on the toy recipes and writes a servable model
/// directory (manifest + checkpoint). Returns the in-process model as
/// ground truth.
fn train_and_export(dir: &Path) -> LstmClassifier {
    std::fs::create_dir_all(dir).unwrap();
    let v = vocab();
    let mut rng = StdRng::seed_from_u64(42);
    let mut model = LstmClassifier::new(lstm_config(), &mut rng);
    let examples: Vec<(Vec<usize>, usize)> =
        RECIPES.iter().map(|&(r, y)| (ids(r, &v), y)).collect();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 30,
        batch_size: 2,
        schedule: LrSchedule::Constant(0.1),
        seed: 7,
        ..TrainerConfig::default()
    });
    trainer
        .fit(&mut model, &mut Sgd::new(0.0), &examples, None)
        .unwrap();

    ModelManifest::lstm(&lstm_config(), &v).save(dir).unwrap();
    save_checkpoint(model.store(), &dir.join("latest.ckpt")).unwrap();
    model
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trained_checkpoint_serves_bit_identical_batched_predictions() {
    let dir = temp_dir("serve_it_lifecycle");
    let reference = train_and_export(&dir);
    let v = vocab();

    // the trained model actually learned the toy task
    let train_seqs: Vec<Vec<usize>> = RECIPES.iter().map(|(r, _)| ids(r, &v)).collect();
    let train_refs: Vec<&[usize]> = train_seqs.iter().map(Vec::as_slice).collect();
    let probs = reference.predict_proba_batch(&train_refs);
    for (row, &(_, y)) in probs.iter().zip(RECIPES.iter()) {
        let top = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, y, "tiny LSTM failed to fit the toy recipes");
    }

    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    // fire all requests concurrently so the worker actually batches them
    let barrier = Arc::new(Barrier::new(RECIPES.len()));
    let handles: Vec<_> = RECIPES
        .iter()
        .map(|&(recipe, _)| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (recipe, server.classify(recipe, None).unwrap())
            })
        })
        .collect();

    let mut max_batch_seen = 0;
    for h in handles {
        let (recipe, prediction) = h.join().unwrap();
        // batched service answer == direct in-process model answer, bitwise
        let expected = reference.predict_proba_batch(&[&ids(recipe, &v)]);
        assert_eq!(prediction.probs, expected[0], "mismatch for {recipe:?}");
        max_batch_seen = max_batch_seen.max(prediction.batch_size);
    }
    assert!(
        max_batch_seen > 1,
        "six concurrent requests never shared a batch"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let dir = temp_dir("serve_it_overload");
    train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    // max_batch exceeds queue_capacity, so the worker keeps its
    // accumulation window open for the full max_delay while both fillers
    // sit in the queue — plenty of time for the probe to hit a full queue
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_secs(2),
                queue_capacity: 2,
                cache_capacity: 0,
            },
        )
        .unwrap(),
    );

    // occupy both queue slots with blocking callers
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.classify("soy, ginger", None))
        })
        .collect();
    // wait until both are actually enqueued (the worker holds the first
    // batch open for max_delay, so depth stays observable)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "fillers never reached the queue"
        );
        std::thread::yield_now();
    }

    match server.classify("basil, tomato", None) {
        Err(ServeError::Overloaded { depth, capacity }) => {
            assert_eq!(capacity, 2);
            assert!(depth >= 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    for f in fillers {
        assert!(f.join().unwrap().is_ok(), "queued fillers must be served");
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shutdown_drains_queued_requests() {
    let dir = temp_dir("serve_it_drain");
    train_and_export(&dir);
    let registry = Arc::new(ModelRegistry::new());
    registry.load("lstm", &dir).unwrap();
    let server = Arc::new(
        BatchServer::start(
            Arc::clone(&registry),
            "lstm",
            ServeConfig {
                max_batch: 4,
                // long fill window: requests are still queued when
                // shutdown lands, forcing the drain path to answer them
                max_delay: Duration::from_secs(2),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    let clients: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.classify("cumin, chili", None))
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "clients never reached the queue"
        );
        std::thread::yield_now();
    }

    server.shutdown();
    for c in clients {
        let prediction = c.join().unwrap();
        assert!(
            prediction.is_ok(),
            "in-flight request dropped during shutdown: {prediction:?}"
        );
    }
    // new work after shutdown is refused
    assert_eq!(server.classify("soy", None), Err(ServeError::ShuttingDown));
    std::fs::remove_dir_all(&dir).unwrap();
}
