//! Metamorphic suite: token order is exactly what separates the paper's
//! two model families.
//!
//! Shuffling the tokens inside every document must leave the bag-of-words
//! pipeline *bit-identical* — the TF-IDF vectorizer canonicalizes rows, so
//! NB/LR/SVM can't see order even in the last float bit — while the
//! sequential models (LSTM, transformer) must produce measurably different
//! logits for the same multiset of tokens. That asymmetry is the paper's
//! central claim, so it gets its own tests.

use cuisine::{PipelineConfig, Scale};
use ml::{
    Classifier, LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig,
    MultinomialNb, MultinomialNbConfig,
};
use nn::{BertClassifier, BertConfig, LstmClassifier, LstmConfig, LstmPooling, SequenceModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use textproc::{TfIdfConfig, TfIdfVectorizer};

/// Deterministically shuffles every document's tokens (seeded per doc).
fn shuffle_docs<T: Clone>(docs: &[Vec<T>], seed: u64) -> Vec<Vec<T>> {
    docs.iter()
        .enumerate()
        .map(|(i, doc)| {
            let mut out = doc.clone();
            out.shuffle(&mut StdRng::seed_from_u64(seed ^ i as u64));
            out
        })
        .collect()
}

fn assert_probs_bit_identical(label: &str, a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len(), "{label}: row count");
    for (row, (pa, pb)) in a.iter().zip(b).enumerate() {
        for (col, (x, y)) in pa.iter().zip(pb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: probability ({row},{col}) differs: {x} vs {y}"
            );
        }
    }
}

#[test]
fn bag_models_are_bit_identical_under_token_shuffle() {
    let config = PipelineConfig::new(Scale::Custom(0.004), 7);
    let pipeline = cuisine::Pipeline::prepare(&config);
    let d = &pipeline.data;

    let train_docs: Vec<Vec<&str>> = d
        .split
        .train
        .iter()
        .map(|&i| d.docs[i].iter().map(String::as_str).collect())
        .collect();
    let test_docs: Vec<Vec<String>> = d.split.test.iter().map(|&i| d.docs[i].clone()).collect();
    let shuffled_docs = shuffle_docs(&test_docs, 0xC0FFEE);
    assert!(
        test_docs.iter().zip(&shuffled_docs).any(|(a, b)| a != b),
        "shuffle must actually permute at least one document"
    );

    let mut vectorizer = TfIdfVectorizer::new(TfIdfConfig {
        min_df: config.models.tfidf_min_df,
        ..Default::default()
    });
    let x_train = vectorizer.fit_transform(&train_docs);
    fn as_refs(docs: &[Vec<String>]) -> Vec<Vec<&str>> {
        docs.iter()
            .map(|doc| doc.iter().map(String::as_str).collect())
            .collect()
    }
    let x_test = vectorizer.transform(&as_refs(&test_docs));
    let x_shuffled = vectorizer.transform(&as_refs(&shuffled_docs));

    // the vectorizer canonicalizes rows, so the matrices are already equal…
    assert_eq!(
        x_test, x_shuffled,
        "TF-IDF must canonicalize away token order"
    );

    // …and therefore every bag model's probabilities are bit-identical
    let y_train = pipeline.labels_of(&d.split.train);
    let mut logreg = LogisticRegression::new(LogisticRegressionConfig {
        sgd: ml::SgdConfig {
            epochs: 5,
            ..Default::default()
        },
    });
    logreg.fit(&x_train, &y_train);
    assert_probs_bit_identical(
        "LogReg",
        &logreg.predict_proba(&x_test),
        &logreg.predict_proba(&x_shuffled),
    );

    let mut nb = MultinomialNb::new(MultinomialNbConfig::default());
    nb.fit(&x_train, &y_train);
    assert_probs_bit_identical(
        "NaiveBayes",
        &nb.predict_proba(&x_test),
        &nb.predict_proba(&x_shuffled),
    );

    let mut svm = LinearSvm::new(LinearSvmConfig {
        sgd: ml::SgdConfig {
            epochs: 5,
            ..Default::default()
        },
    });
    svm.fit(&x_train, &y_train);
    assert_probs_bit_identical(
        "LinearSVM",
        &svm.predict_proba(&x_test),
        &svm.predict_proba(&x_shuffled),
    );
    assert_eq!(svm.predict(&x_test), svm.predict(&x_shuffled));
}

/// Max absolute difference between two logit rows of the same shape.
fn max_logit_diff(model: &impl SequenceModel, a: &[usize], b: &[usize]) -> f32 {
    let mut g = autograd::Graph::new(model.store());
    let mut rng = StdRng::seed_from_u64(0);
    let la = model.logits(&mut g, a, false, &mut rng);
    let lb = model.logits(&mut g, b, false, &mut rng);
    let (va, vb) = (g.value(la).clone(), g.value(lb).clone());
    va.as_slice()
        .iter()
        .zip(vb.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[test]
fn lstm_logits_change_under_token_shuffle() {
    let mut rng = StdRng::seed_from_u64(21);
    let model = LstmClassifier::new(
        LstmConfig {
            vocab: 32,
            emb_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
            classes: 4,
            pooling: LstmPooling::LastHidden,
        },
        &mut rng,
    );
    let seq: Vec<usize> = vec![5, 9, 12, 7, 20, 6];
    let mut shuffled = seq.clone();
    shuffled.shuffle(&mut StdRng::seed_from_u64(3));
    assert_ne!(seq, shuffled);
    assert_eq!(
        {
            let mut s = seq.clone();
            s.sort_unstable();
            s
        },
        {
            let mut s = shuffled.clone();
            s.sort_unstable();
            s
        },
        "shuffle must preserve the token multiset"
    );

    let diff = max_logit_diff(&model, &seq, &shuffled);
    assert!(
        diff > 1e-4,
        "LSTM logits should differ measurably under reordering, max diff {diff}"
    );
    // sanity: identical input really is bit-identical
    assert_eq!(max_logit_diff(&model, &seq, &seq), 0.0);
}

#[test]
fn transformer_logits_change_under_token_shuffle() {
    let mut rng = StdRng::seed_from_u64(22);
    let model = BertClassifier::new(
        BertConfig {
            vocab: 32,
            d_model: 8,
            heads: 2,
            layers: 1,
            d_ff: 16,
            max_len: 16,
            dropout: 0.0,
            classes: 4,
        },
        &mut rng,
    );
    let seq: Vec<usize> = vec![5, 9, 12, 7, 20, 6];
    let mut shuffled = seq.clone();
    shuffled.shuffle(&mut StdRng::seed_from_u64(3));
    assert_ne!(seq, shuffled);

    // the transformer sees order only through position embeddings, so this
    // also proves those embeddings are wired into the forward pass
    let diff = max_logit_diff(&model, &seq, &shuffled);
    assert!(
        diff > 1e-4,
        "transformer logits should differ measurably under reordering, max diff {diff}"
    );
    assert_eq!(max_logit_diff(&model, &seq, &seq), 0.0);
}
