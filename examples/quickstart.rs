//! Quickstart: generate a small synthetic RecipeDB, train the paper's best
//! statistical baseline (Logistic Regression) and print its Table IV row.
//!
//! Run with: `cargo run --release --example quickstart`

use cuisine::{ModelKind, Pipeline, PipelineConfig, Scale};

fn main() {
    // A ~2% corpus: ~2.4k recipes across all 26 cuisines.
    let config = PipelineConfig::new(Scale::Small, 42);
    println!(
        "generating synthetic RecipeDB (scale {})…",
        config.generator.scale
    );
    let pipeline = Pipeline::prepare(&config);
    println!(
        "{} recipes, {} train / {} val / {} test, vocab {}",
        pipeline.data.dataset.len(),
        pipeline.data.split.train.len(),
        pipeline.data.split.val.len(),
        pipeline.data.split.test.len(),
        pipeline.data.vocab.len(),
    );

    println!("\ntraining Logistic Regression on TF-IDF features…");
    let result = pipeline.run(ModelKind::LogReg, &config);
    println!("LogReg (paper: 57.70% accuracy at full scale)");
    println!("  {}", result.report);
    println!("  trained in {:.1}s", result.train_seconds);

    // show a few example predictions with the true labels
    let (_, _, test_x, _) = pipeline.tfidf_features(&config);
    let _ = test_x;
    println!("\nsample test recipes:");
    for &idx in pipeline.data.split.test.iter().take(5) {
        let recipe = &pipeline.data.dataset.recipes[idx];
        let text = recipe.to_text(&pipeline.data.dataset.table);
        let shown: String = text.chars().take(90).collect();
        println!("  [{}] {shown}…", recipe.cuisine.name());
    }
}
