//! Train → save → reload → serve: persist a fitted Logistic Regression to
//! JSON and classify with the reloaded copy, the deployment path of a
//! recipe-recommendation service built on this library.
//!
//! Run with: `cargo run --release --example persist_model`

use cuisine::{Pipeline, PipelineConfig, Scale};
use ml::{load_linear, save_linear, Classifier, LogisticRegression};
use recipedb::CuisineId;

fn main() {
    let config = PipelineConfig::new(Scale::Small, 21);
    println!("preparing corpus…");
    let pipeline = Pipeline::prepare(&config);
    let (train_x, _, test_x, _) = pipeline.tfidf_features(&config);
    let train_y = pipeline.labels_of(&pipeline.data.split.train);
    let test_y = pipeline.labels_of(&pipeline.data.split.test);

    println!("training Logistic Regression…");
    let mut model = LogisticRegression::default();
    model.fit(&train_x, &train_y);

    let path = std::env::temp_dir().join("cuisine_logreg.json");
    save_linear(model.linear_model(), &path).expect("save model");
    println!(
        "saved to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    let restored = load_linear(&path).expect("load model");
    println!("reloaded; serving predictions from the restored weights:");
    let mut correct = 0usize;
    for (r, &gold) in test_y.iter().enumerate() {
        let scores = restored.decision_row(&test_x, r);
        let pred = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == gold {
            correct += 1;
        }
        if r < 5 {
            println!(
                "  test recipe {r}: predicted {:<24} gold {}",
                CuisineId(pred as u8).name(),
                CuisineId(gold as u8).name()
            );
        }
    }
    println!(
        "\nrestored-model test accuracy: {:.2}%",
        correct as f64 / test_x.rows() as f64 * 100.0
    );
    std::fs::remove_file(&path).ok();
}
