//! Classify a hand-written recipe: train Naive Bayes on the synthetic
//! corpus, then predict the cuisine of a new ingredient/process/utensil
//! sequence supplied as entity names.
//!
//! Run with: `cargo run --release --example classify_recipe`

use cuisine::{featurize, Pipeline, PipelineConfig, Scale};
use ml::{Classifier, MultinomialNb};
use recipedb::CuisineId;

fn main() {
    let config = PipelineConfig::new(Scale::Small, 7);
    println!("preparing corpus…");
    let pipeline = Pipeline::prepare(&config);
    let (train_x, _, _, vectorizer) = pipeline.tfidf_features(&config);
    let train_y = pipeline.labels_of(&pipeline.data.split.train);

    println!("training Naive Bayes…");
    let mut nb = MultinomialNb::default();
    nb.fit(&train_x, &train_y);

    // A new recipe as the paper's Table I presents them: ingredients,
    // then ordered processes, then utensils.
    let my_recipe = [
        "coconut milk",
        "basmati rice",
        "white sugar",
        "cardamom",
        "stir",
        "simmer",
        "cook",
        "garnish",
        "saucepan",
        "bowl",
    ];
    println!("\nclassifying recipe: {my_recipe:?}");

    // same preprocessing as the pipeline: clean + per-word lemmatize
    let tokens: Vec<Vec<String>> = vec![my_recipe
        .iter()
        .map(|t| featurize::canonical_entity(t))
        .collect()];
    let features = vectorizer.transform(&tokens);
    let probs = nb.predict_proba(&features);

    let mut ranked: Vec<(usize, f64)> = probs[0].iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 cuisines:");
    for &(class, p) in ranked.iter().take(5) {
        println!(
            "  {:<24} {:>6.2}%",
            CuisineId(class as u8).name(),
            p * 100.0
        );
    }
}
