//! Compare the statistical models and the LSTM head-to-head on one small
//! corpus — a fast subset of the full Table IV harness.
//!
//! Run with: `cargo run --release --example compare_models`

use cuisine::report::render_table4;
use cuisine::{ModelKind, Pipeline, PipelineConfig, Scale};

fn main() {
    let mut config = PipelineConfig::new(Scale::Small, 11);
    // keep the example fast: fewer LSTM epochs than the harness default
    config.models.lstm_trainer.epochs = 4;

    println!("preparing corpus…");
    let pipeline = Pipeline::prepare(&config);

    let kinds = [
        ModelKind::LogReg,
        ModelKind::NaiveBayes,
        ModelKind::SvmLinear,
        ModelKind::RandomForest,
        ModelKind::Lstm,
    ];
    let mut results = Vec::new();
    for kind in kinds {
        println!("running {}…", kind.name());
        results.push(pipeline.run(kind, &config));
    }

    println!("\n{}", render_table4(&results));
    println!(
        "(paper numbers are full-scale RecipeDB; measured numbers are the {}-recipe synthetic corpus)",
        pipeline.data.dataset.len()
    );
}
