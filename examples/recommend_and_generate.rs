//! The paper's motivating applications: recommend similar recipes
//! (content-based, TF-IDF cosine) and generate a novel recipe for a
//! cuisine (order-2 Markov chain over the sequential structure).
//!
//! Run with: `cargo run --release --example recommend_and_generate`

use cuisine::apps::{MarkovRecipeGenerator, RecipeRecommender};
use cuisine::{Pipeline, PipelineConfig, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recipedb::CuisineId;

fn main() {
    let config = PipelineConfig::new(Scale::Small, 77);
    println!("preparing corpus…");
    let pipeline = Pipeline::prepare(&config);
    let (train_x, _, _, _) = pipeline.tfidf_features(&config);

    // --- recommendation -------------------------------------------------
    println!(
        "\nindexing {} training recipes for recommendation…",
        train_x.rows()
    );
    let recommender = RecipeRecommender::fit(&train_x);
    let query_pos = 0usize;
    let query_recipe_idx = pipeline.data.split.train[query_pos];
    let query = &pipeline.data.dataset.recipes[query_recipe_idx];
    println!(
        "query recipe [{}]: {}…",
        query.cuisine.name(),
        query
            .to_text(&pipeline.data.dataset.table)
            .chars()
            .take(80)
            .collect::<String>()
    );
    println!("most similar recipes:");
    for (row, sim) in recommender.recommend_for_indexed(&train_x, query_pos, 5) {
        let idx = pipeline.data.split.train[row];
        let r = &pipeline.data.dataset.recipes[idx];
        println!(
            "  {sim:.3}  [{}] {}…",
            r.cuisine.name(),
            r.to_text(&pipeline.data.dataset.table)
                .chars()
                .take(70)
                .collect::<String>()
        );
    }

    // --- generation ------------------------------------------------------
    println!("\ntraining the cuisine-conditioned Markov generator…");
    let generator = MarkovRecipeGenerator::fit(&pipeline.data.dataset, Default::default());
    let mut rng = StdRng::seed_from_u64(7);
    for name in ["Italian", "Thai", "Mexican"] {
        let cuisine = CuisineId::all().find(|c| c.name() == name).unwrap();
        let tokens = generator.generate(cuisine, &mut rng);
        let text: Vec<&str> = tokens
            .iter()
            .map(|&t| pipeline.data.dataset.table.name(t))
            .collect();
        println!("\nnovel {name} recipe ({} steps):", text.len());
        println!("  {}", text.join(" → "));
    }
}
