//! Masked-language-model pre-training demo: watch a small transformer
//! learn recipe structure, contrasting the BERT recipe (static masking)
//! with the RoBERTa recipe (dynamic masking, longer schedule).
//!
//! Run with: `cargo run --release --example pretrain_roberta`

use cuisine::{Pipeline, PipelineConfig, Scale};
use nn::{BertClassifier, BertConfig, PretrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut config = PipelineConfig::new(Scale::Custom(0.01), 3);
    config.models.vocab_max_size = 1_000;
    println!("preparing corpus…");
    let pipeline = Pipeline::prepare(&config);
    let corpus: Vec<Vec<usize>> = pipeline
        .data
        .split
        .train
        .iter()
        .map(|&i| pipeline.data.sequences[i].clone())
        .collect();
    println!("{} pre-training sequences", corpus.len());

    let bert_config = BertConfig {
        vocab: config.models.vocab_max_size + 5,
        d_model: 64,
        heads: 4,
        layers: 2,
        d_ff: 128,
        max_len: 48,
        dropout: 0.1,
        classes: 26,
    };

    for (label, pretrain) in [
        (
            "BERT-style (static masking)",
            PretrainConfig::bert_style(2, 3),
        ),
        (
            "RoBERTa-style (dynamic masking, 2x steps)",
            PretrainConfig::roberta_style(2, 3),
        ),
    ] {
        println!("\n=== {label} ===");
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = BertClassifier::new(bert_config, &mut rng);
        let stats = model.pretrain_mlm(&corpus, &pipeline.data.vocab, &pretrain);
        for (epoch, loss) in stats.epoch_losses.iter().enumerate() {
            println!("  epoch {epoch}: MLM loss {loss:.4}");
        }
        println!("  total optimizer steps: {}", stats.steps);
    }
}
